"""Sharded execution of the ensemble engine: the batch axis across workers.

The two hot loops of the QTDA pipeline are embarrassingly parallel along one
axis each: the ``ensemble`` route evolves ``B = 2^q`` independent basis-state
columns, and the ``trajectory`` route repeats ``T`` independent stochastic
unravellings.  This module splits those axes across a pool of workers — CPU
processes, threads, or CuPy device contexts resolved through the engine's
``xp`` seam — while staying **bit-identical** to the unsharded run:

* *Ensemble route.*  The engine evolves ensembles in fixed column blocks
  (:meth:`~repro.quantum.engine.EnsembleExecutor.evolution_block` — pinned
  because GEMM results are width-sensitive at the ulp level), and shards are
  cut **along those block boundaries**, so every evolution runs at exactly
  the width the unsharded executor would use.  Workers return per-member
  marginal matrices; the coordinator reassembles the full ``(out_dim, B)``
  matrix and replays the unsharded executor's own block-by-block weighted
  contraction, so every floating-point operation happens in the same order
  on the same bytes.
* *Trajectory route.*  Per-trajectory seeds are derived up front from the
  estimator RNG (:func:`~repro.quantum.engine.derive_trajectory_seeds`);
  workers compute their seed slice's rows and the coordinator stacks them in
  trajectory order before the shared mean/SEM reduction.  A bounded-memory
  alternative merges per-shard ``(count, mean, M2)`` moments with the exact
  Chan/Welford update (:func:`merge_moments`) instead of shipping rows.

Worker payloads are the objects' existing serialisable forms: circuits and
fused gate plans pickle as plain dataclasses, noise goes over as the
:class:`~repro.quantum.channels.NoiseSpec` wire dict.  Process pools use the
spawn context (fork-safety with BLAS threads) and are cached per
``(backend, workers)`` for the life of the process — a service handling many
requests pays pool startup once (:func:`get_shard_pool` /
:func:`shutdown_shard_pools`).

IR is shipped **once per shard**, not once per request: process workers keep
a fingerprint-keyed cache of the gate plans / circuits they have executed,
so repeated requests against the same circuit send only the fingerprint and
the shard's index range (a few hundred bytes instead of megabytes of gate
matrices).  A worker that has not yet seen the fingerprint — pools outlive
executors and tasks are not assigned round-robin — answers with a cache-miss
sentinel and the coordinator resends that one shard with the IR attached.
"""

from __future__ import annotations

import multiprocessing
import threading
import weakref
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.quantum.channels import NoiseSpec
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.engine import (
    DEFAULT_MAX_FUSE_QUBITS,
    DEFAULT_MEMORY_BUDGET_BYTES,
    EnsembleExecutor,
    derive_trajectory_seeds,
    to_host,
    trajectory_mean_and_sem,
    _normalised_weights,
)

#: Worker-pool flavours a :class:`ShardedExecutor` can run on.  ``"serial"``
#: executes shards in-process (the determinism reference), ``"thread"`` uses
#: a thread pool (BLAS releases the GIL inside the wide tensordots),
#: ``"process"`` a spawn-context process pool, and ``"device"`` one CuPy
#: device context per shard.
SHARD_BACKENDS = ("serial", "thread", "process", "device")

#: Reduction modes for the sharded trajectory route: ``"rows"`` ships every
#: per-trajectory distribution back (bit-identical to the serial reduction),
#: ``"moments"`` merges per-shard Welford moments (O(out_dim) per shard
#: regardless of trajectory count; equal up to float rounding).
TRAJECTORY_REDUCTIONS = ("rows", "moments")


# ---------------------------------------------------------------------------
# Shard planning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardPlan:
    """A contiguous partition of ``total`` items into per-shard index ranges."""

    total: int
    bounds: Tuple[Tuple[int, int], ...]

    @classmethod
    def balanced(cls, total: int, num_shards: int) -> "ShardPlan":
        """Split ``total`` items into at most ``num_shards`` near-equal ranges.

        The first ``total % shards`` shards take one extra item; the shard
        count is clamped to ``total`` so no shard is ever empty.
        """
        total = int(total)
        if total < 1:
            raise ValueError("total must be >= 1")
        num_shards = int(num_shards)
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        shards = min(num_shards, total)
        base, extra = divmod(total, shards)
        bounds = []
        start = 0
        for index in range(shards):
            stop = start + base + (1 if index < extra else 0)
            bounds.append((start, stop))
            start = stop
        return cls(total=total, bounds=tuple(bounds))

    @property
    def num_shards(self) -> int:
        return len(self.bounds)

    def slices(self) -> Tuple[slice, ...]:
        return tuple(slice(start, stop) for start, stop in self.bounds)


# ---------------------------------------------------------------------------
# Exact parallel variance merging (Chan / Welford)
# ---------------------------------------------------------------------------

#: ``(count, mean, M2)`` running moments of a set of distribution rows.
Moments = Tuple[int, np.ndarray, np.ndarray]


def moments_from_rows(rows: np.ndarray) -> Moments:
    """Two-pass ``(count, mean, M2)`` moments of a ``(T, out_dim)`` row stack."""
    rows = np.asarray(rows, dtype=float)
    count = rows.shape[0]
    mean = rows.mean(axis=0)
    m2 = ((rows - mean) ** 2).sum(axis=0)
    return count, mean, m2


def merge_moments(a: Moments, b: Moments) -> Moments:
    """Chan et al.'s exact pairwise update for partitioned ``(count, mean, M2)``.

    ``M2`` is the sum of squared deviations from the mean, so the sample
    variance is ``M2 / (count - 1)``; merging two partitions' moments gives
    the same mean and M2 (up to float rounding) as computing them over the
    concatenated rows — the standard parallel-variance identity:

    ``M2 = M2_a + M2_b + delta² · n_a·n_b/n``  with ``delta = mean_b - mean_a``.
    """
    count_a, mean_a, m2_a = a
    count_b, mean_b, m2_b = b
    if count_a == 0:
        return b
    if count_b == 0:
        return a
    count = count_a + count_b
    delta = mean_b - mean_a
    mean = mean_a + delta * (count_b / count)
    m2 = m2_a + m2_b + delta**2 * (count_a * count_b / count)
    return count, mean, m2


def moments_mean_and_sem(moments: Moments) -> Tuple[np.ndarray, np.ndarray]:
    """``(mean, std(ddof=1)/sqrt(count))`` from running moments (zeros at count 1)."""
    count, mean, m2 = moments
    if count > 1:
        sem = np.sqrt(m2 / (count - 1)) / np.sqrt(count)
    else:
        sem = np.zeros_like(mean)
    return mean, sem


# ---------------------------------------------------------------------------
# Worker functions (module level: spawn-context process pools pickle these
# by reference, payloads by value)
# ---------------------------------------------------------------------------

#: Per-worker-process IR cache: fingerprint key -> gate plan / circuit.  The
#: gate matrices dominate the payload (megabytes vs hundreds of bytes for the
#: rest), so keeping them resident turns repeated requests into near-zero-copy
#: dispatches.  Bounded FIFO so a long-lived pool serving many distinct
#: circuits cannot grow without limit.
_WORKER_IR_CACHE: Dict[str, object] = {}
_WORKER_IR_CAPACITY = 8


def _worker_ir_put(key: str, value) -> None:
    if key not in _WORKER_IR_CACHE and len(_WORKER_IR_CACHE) >= _WORKER_IR_CAPACITY:
        _WORKER_IR_CACHE.pop(next(iter(_WORKER_IR_CACHE)))
    _WORKER_IR_CACHE[key] = value


#: Coordinator-side record of which IR fingerprints have been shipped into a
#: given pool at least once (weakly keyed: a recreated pool starts fresh).
#: "Shipped once" is an optimisation, not a guarantee that *every* worker has
#: the IR — the cache-miss retry in ``_run_shards`` is the correctness path.
_SHIPPED_IR: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _shipped_ir_keys(pool) -> set:
    keys = _SHIPPED_IR.get(pool)
    if keys is None:
        keys = set()
        _SHIPPED_IR[pool] = keys
    return keys


def _with_ir(payload: tuple, slot: int, value) -> tuple:
    return payload[:slot] + (value,) + payload[slot + 1 :]


def _member_marginals_from_plan(
    num_qubits: int,
    plan,
    qubits: Sequence[int],
    basis_block: Sequence[int],
    memory_budget_bytes: int,
    column_block: int,
    xp=np,
) -> np.ndarray:
    """One ensemble shard: ``(out_dim, len(basis_block))`` member marginals.

    The fused gate plan was computed once by the coordinator and shipped with
    the shard, so workers never re-run the fusion pass.  The shard starts on
    an evolution-block boundary (the coordinator cuts it there) and the same
    pinned block width is used here, so every evolution runs at exactly the
    width the unsharded executor would use; host transfers stream one small
    ``(out_dim, block)`` matrix at a time (never the device states).
    """
    executor = EnsembleExecutor(
        fuse=False,
        memory_budget_bytes=memory_budget_bytes,
        column_block=column_block,
        xp=xp,
    )
    prepared = executor._prepare(plan)
    chunk = executor.evolution_block(num_qubits)
    block = list(basis_block)
    parts = []
    for start in range(0, len(block), chunk):
        sub = block[start : start + chunk]
        parts.append(
            to_host(executor._member_marginal_block(sub, prepared, num_qubits, qubits))
        )
    return np.hstack(parts)


def _ensemble_shard_worker(payload) -> Optional[np.ndarray]:
    """Process-pool entry point for one ensemble shard (CPU, NumPy).

    ``plan`` is ``None`` when the coordinator believes this pool already
    holds the IR; a worker that missed it returns ``None`` (never an array)
    and the coordinator resends the shard with the plan attached.
    """
    num_qubits, ir_key, plan, qubits, basis_block, memory_budget_bytes, column_block = payload
    if plan is not None:
        _worker_ir_put(ir_key, plan)
    else:
        plan = _WORKER_IR_CACHE.get(ir_key)
        if plan is None:
            return None
    return _member_marginals_from_plan(
        num_qubits, plan, qubits, basis_block, memory_budget_bytes, column_block, xp=np
    )


def _trajectory_shard_worker(payload) -> Optional[np.ndarray]:
    """Process-pool entry point for one trajectory shard: ``(T_shard, out_dim)`` rows.

    The circuit rides the same once-per-shard IR cache as the ensemble plan
    (``None`` circuit -> cache lookup -> ``None`` result on a miss).
    """
    ir_key, circuit, qubits, basis_states, spec_dict, seeds, weights, memory_budget_bytes = payload
    if circuit is not None:
        _worker_ir_put(ir_key, circuit)
    else:
        circuit = _WORKER_IR_CACHE.get(ir_key)
        if circuit is None:
            return None
    executor = EnsembleExecutor(fuse=False, memory_budget_bytes=memory_budget_bytes, xp=np)
    return executor.trajectory_rows(
        circuit,
        qubits,
        basis_states,
        NoiseSpec.from_dict(spec_dict),
        seeds,
        weights,
    )


# ---------------------------------------------------------------------------
# Shared worker pools
# ---------------------------------------------------------------------------

_POOLS: Dict[Tuple[str, int], object] = {}
_POOLS_LOCK = threading.Lock()


def get_shard_pool(backend: str, workers: int):
    """The process-wide pool for ``(backend, workers)``, created on first use.

    Pools are shared across every :class:`ShardedExecutor` (and every
    :class:`~repro.core.api.QTDAService` request), so repeated sharded runs
    pay interpreter spawn-up once.  ``"device"`` shards run on a thread pool
    — each thread activates its own CUDA device context.
    """
    if backend not in ("thread", "process", "device"):
        raise ValueError(f"no pool for shard backend {backend!r}")
    key = (str(backend), int(workers))
    with _POOLS_LOCK:
        pool = _POOLS.get(key)
        if pool is None:
            if backend == "process":
                pool = ProcessPoolExecutor(
                    max_workers=key[1], mp_context=multiprocessing.get_context("spawn")
                )
            else:
                pool = ThreadPoolExecutor(
                    max_workers=key[1], thread_name_prefix=f"qtda-shard-{backend}"
                )
            _POOLS[key] = pool
    return pool


def shutdown_shard_pools() -> None:
    """Shut down every cached shard pool (idempotent; pools recreate on demand)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True)


def device_backend_available() -> Tuple[bool, str]:
    """Whether the ``"device"`` shard backend can run here, with the reason.

    Never raises: used by routing, benchmarks and tests to skip (visibly)
    when CuPy or CUDA hardware is absent.
    """
    try:
        import cupy
    except Exception as exc:  # pragma: no cover - depends on environment
        return False, f"cupy not importable: {exc}"
    try:  # pragma: no cover - requires CUDA hardware
        count = int(cupy.cuda.runtime.getDeviceCount())
    except Exception as exc:  # pragma: no cover - depends on environment
        return False, f"no usable CUDA runtime: {exc}"
    if count < 1:  # pragma: no cover - requires CUDA hardware
        return False, "no CUDA devices present"
    return True, f"{count} CUDA device(s)"  # pragma: no cover - requires hardware


# ---------------------------------------------------------------------------
# The sharded executor
# ---------------------------------------------------------------------------


class ShardedExecutor:
    """Splits :class:`~repro.quantum.engine.EnsembleExecutor` work across shards.

    Parameters
    ----------
    num_shards:
        Number of shards the batch / trajectory axis is split into (clamped
        per call so no shard is empty).
    backend:
        One of :data:`SHARD_BACKENDS`.  ``"process"`` is the CPU scaling
        path; ``"device"`` places one shard per CuPy device context and
        raises at construction when no device is usable
        (:func:`device_backend_available` lets callers skip cleanly first).
    devices:
        Device ordinals for the ``"device"`` backend (round-robin over shards;
        defaults to device 0 for every shard).  Ignored otherwise.
    fuse, max_fuse_qubits, memory_budget_bytes, column_block:
        Forwarded to the underlying engine semantics: the coordinator runs
        the fusion pass once and ships the plan; each shard evolves at the
        same pinned column-block width under the same memory budget, and the
        fusion window stays pinned at ``max_fuse_qubits`` on every shard so
        plans are identical everywhere.
    """

    def __init__(
        self,
        num_shards: int,
        backend: str = "process",
        devices: Optional[Sequence[int]] = None,
        fuse: bool = True,
        max_fuse_qubits: int = DEFAULT_MAX_FUSE_QUBITS,
        memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET_BYTES,
        column_block: Optional[int] = None,
    ):
        self.num_shards = int(num_shards)
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if backend not in SHARD_BACKENDS:
            raise ValueError(f"backend must be one of {SHARD_BACKENDS}, got {backend!r}")
        self.backend = str(backend)
        self.fuse = bool(fuse)
        self.max_fuse_qubits = int(max_fuse_qubits)
        self.memory_budget_bytes = int(memory_budget_bytes)
        self.devices: Optional[Tuple[int, ...]] = None
        if self.backend == "device":
            available, reason = device_backend_available()
            if not available:
                raise RuntimeError(f"device shard backend unavailable: {reason}")
            self.devices = (
                tuple(int(d) for d in devices) if devices else (0,)
            )
        # The reference executor defines the coordinator-side reduction: the
        # chunk structure it would use unsharded is replayed over the
        # assembled marginal matrix so results match byte for byte.
        self._reference = EnsembleExecutor(
            fuse=self.fuse,
            max_fuse_qubits=self.max_fuse_qubits,
            memory_budget_bytes=self.memory_budget_bytes,
            column_block=column_block,
            xp=np,
        )
        self.column_block = self._reference.column_block

    # -- identity --------------------------------------------------------------
    @property
    def device_label(self) -> str:
        """Provenance string for where shards ran (``cpu`` or ``cuda:<ordinals>``)."""
        if self.backend == "device" and self.devices is not None:
            return "cuda:" + ",".join(str(d) for d in self.devices)
        return "cpu"

    def close(self) -> None:
        """Release executor-held resources.

        Worker pools are deliberately *not* owned by individual executors —
        they are process-wide and shared across requests (see
        :func:`get_shard_pool`); call :func:`shutdown_shard_pools` to tear
        those down (``QTDAService.close`` does).
        """

    def gate_plan(self, circuit: QuantumCircuit):
        """The (possibly fused) gate plan shards will execute — computed once
        in the coordinator and shipped once per shard (workers cache it by
        the key below; later requests send only the key)."""
        return self._reference.gate_plan(circuit)

    def _ensemble_ir_key(self, circuit: QuantumCircuit) -> str:
        """Cache key of the *plan* a worker would execute: the plan is a pure
        function of the circuit content and the fusion settings."""
        return f"plan:{circuit.fingerprint()}:fuse={int(self.fuse)}:window={self.max_fuse_qubits}"

    @staticmethod
    def _trajectory_ir_key(circuit: QuantumCircuit) -> str:
        """Cache key of the raw circuit the trajectory workers replay
        (trajectory execution never fuses, so content alone identifies it)."""
        return f"circuit:{circuit.fingerprint()}"

    # -- shard dispatch --------------------------------------------------------
    def _device_for_shard(self, index: int) -> int:
        assert self.devices is not None
        return self.devices[index % len(self.devices)]

    def _run_shards(self, worker, payloads, device_worker=None, ir=None):
        """Run one payload per shard; results in shard order.

        ``ir=(key, value, slot)`` activates once-per-shard IR shipping on the
        process backend: payloads arrive here with the IR attached at
        ``slot``; if ``key`` has already been shipped into the pool the slot
        is blanked to ``None`` before pickling, and any worker that answers
        with the cache-miss sentinel (``None``) gets its shard resent with
        the IR attached.  Serial/thread shards share the coordinator's
        memory, and device shards run in-process threads, so both always see
        the attached IR at zero serialisation cost.
        """
        if self.backend == "serial":
            return [worker(payload) for payload in payloads]
        if self.backend == "device":
            assert device_worker is not None
            pool = get_shard_pool("device", max(len(payloads), 1))
            futures = [
                pool.submit(device_worker, payload, self._device_for_shard(index))
                for index, payload in enumerate(payloads)
            ]
            return [future.result() for future in futures]
        pool = get_shard_pool(self.backend, self.num_shards)
        if self.backend == "process" and ir is not None:
            ir_key, ir_value, slot = ir
            shipped = _shipped_ir_keys(pool)
            if ir_key in shipped:
                payloads = [_with_ir(payload, slot, None) for payload in payloads]
            futures = [pool.submit(worker, payload) for payload in payloads]
            results = [future.result() for future in futures]
            for index, result in enumerate(results):
                if result is None:
                    resend = _with_ir(payloads[index], slot, ir_value)
                    results[index] = pool.submit(worker, resend).result()
            shipped.add(ir_key)
            return results
        futures = [pool.submit(worker, payload) for payload in payloads]
        return [future.result() for future in futures]

    # -- ensemble route --------------------------------------------------------
    def basis_ensemble_member_marginals(
        self,
        circuit: QuantumCircuit,
        qubits: Sequence[int],
        basis_states: Sequence[int],
        plan=None,
    ) -> np.ndarray:
        """Sharded ``(out_dim, B)`` member marginals (bit-identical to unsharded).

        Shards are cut along evolution-block boundaries: the unsharded
        executor evolves the batch in pinned-width blocks, so distributing
        whole blocks (never splitting one) keeps every GEMM at exactly the
        unsharded width.  The effective shard count is therefore clamped to
        the number of blocks — a batch narrower than one block runs on a
        single shard.
        """
        n = circuit.num_qubits
        basis = self._reference._validated_basis(circuit, basis_states)
        if plan is None:
            plan = self._reference.gate_plan(circuit)
        ir_key = self._ensemble_ir_key(circuit)
        width = self._reference.evolution_block(n)
        num_blocks = -(-len(basis) // width)
        block_plan = ShardPlan.balanced(num_blocks, self.num_shards)
        payloads = [
            (
                n,
                ir_key,
                plan,
                tuple(int(q) for q in qubits),
                basis[start * width : min(stop * width, len(basis))],
                self.memory_budget_bytes,
                self.column_block,
            )
            for start, stop in block_plan.bounds
        ]
        blocks = self._run_shards(
            _ensemble_shard_worker,
            payloads,
            device_worker=_device_ensemble_worker,
            ir=(ir_key, plan, 2),
        )
        return np.hstack(blocks)

    def basis_ensemble_distribution(
        self,
        circuit: QuantumCircuit,
        qubits: Sequence[int],
        basis_states: Sequence[int],
        weights: Optional[Sequence[float]] = None,
        plan=None,
    ) -> np.ndarray:
        """Sharded readout distribution, bit-identical to the unsharded executor.

        Shards compute per-member marginal matrices at the pinned evolution
        width; the coordinator reassembles them and replays the unsharded
        executor's block-by-block weighted contraction — same block
        boundaries, same GEMV operands, same left-fold accumulation order —
        so the bytes match
        :meth:`EnsembleExecutor.basis_ensemble_distribution` exactly.
        """
        n = circuit.num_qubits
        basis = self._reference._validated_basis(circuit, basis_states)
        w = _normalised_weights(weights, len(basis))
        marginals = self.basis_ensemble_member_marginals(circuit, qubits, basis, plan=plan)
        chunk = self._reference.evolution_block(n)
        total: Optional[np.ndarray] = None
        for start in range(0, len(basis), chunk):
            stop = min(start + chunk, len(basis))
            partial = np.ascontiguousarray(marginals[:, start:stop]) @ w[start:stop]
            total = partial if total is None else total + partial
        assert total is not None
        return total / total.sum()

    # -- trajectory route ------------------------------------------------------
    def trajectory_basis_distribution(
        self,
        circuit: QuantumCircuit,
        qubits: Sequence[int],
        basis_states: Sequence[int],
        noise_spec: NoiseSpec,
        rng: np.random.Generator,
        n_trajectories: int = 8,
        weights: Optional[Sequence[float]] = None,
        reduction: str = "rows",
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sharded trajectory mean and standard error.

        Seeds are derived exactly as the unsharded path derives them
        (:func:`~repro.quantum.engine.derive_trajectory_seeds` on ``rng``),
        then split contiguously across shards; each worker runs its
        trajectories independently.  ``reduction="rows"`` stacks the rows in
        trajectory order and applies the shared mean/SEM reduction —
        bit-identical to :meth:`EnsembleExecutor.trajectory_basis_distribution`
        with the same ``rng``.  ``reduction="moments"`` merges per-shard
        Welford moments with :func:`merge_moments` (bounded shard-to-
        coordinator traffic; equal up to float rounding).
        """
        if reduction not in TRAJECTORY_REDUCTIONS:
            raise ValueError(
                f"reduction must be one of {TRAJECTORY_REDUCTIONS}, got {reduction!r}"
            )
        basis = self._reference._validated_basis(circuit, basis_states)
        # Validate eagerly (fast failure in the coordinator) but ship the RAW
        # weights: every worker re-runs the same normalisation the unsharded
        # executor runs, so the per-row float operations are byte-identical.
        _normalised_weights(weights, len(basis))
        raw_weights = None if weights is None else tuple(float(x) for x in weights)
        seeds = derive_trajectory_seeds(rng, n_trajectories)
        shard_plan = ShardPlan.balanced(len(seeds), self.num_shards)
        spec_dict = noise_spec.as_dict()
        ir_key = self._trajectory_ir_key(circuit)
        payloads = [
            (
                ir_key,
                circuit,
                tuple(int(q) for q in qubits),
                basis,
                spec_dict,
                seeds[start:stop],
                raw_weights,
                self.memory_budget_bytes,
            )
            for start, stop in shard_plan.bounds
        ]
        row_blocks = self._run_shards(
            _trajectory_shard_worker,
            payloads,
            device_worker=_device_trajectory_worker,
            ir=(ir_key, circuit, 1),
        )
        if reduction == "moments":
            merged = (0, np.zeros(1), np.zeros(1))
            for block in row_blocks:
                merged = merge_moments(merged, moments_from_rows(block))
            return moments_mean_and_sem(merged)
        return trajectory_mean_and_sem(np.vstack(row_blocks))


def _device_ensemble_worker(payload, device_ordinal: int) -> np.ndarray:
    """One ensemble shard inside a CuPy device context (thread-pool entry)."""
    import cupy  # the executor validated availability at construction

    num_qubits, _ir_key, plan, qubits, basis_block, memory_budget_bytes, column_block = payload
    with cupy.cuda.Device(device_ordinal):  # pragma: no cover - requires hardware
        return _member_marginals_from_plan(
            num_qubits, plan, qubits, basis_block, memory_budget_bytes, column_block, xp=cupy
        )


def _device_trajectory_worker(payload, device_ordinal: int) -> np.ndarray:
    """One trajectory shard inside a CuPy device context (thread-pool entry)."""
    import cupy

    _ir_key, circuit, qubits, basis_states, spec_dict, seeds, weights, memory_budget_bytes = payload
    with cupy.cuda.Device(device_ordinal):  # pragma: no cover - requires hardware
        executor = EnsembleExecutor(
            fuse=False, memory_budget_bytes=memory_budget_bytes, xp=cupy
        )
        return executor.trajectory_rows(
            circuit, qubits, basis_states, NoiseSpec.from_dict(spec_dict), seeds, weights
        )
