"""Pauli-evolution (Trotter) circuit synthesis.

This is the construction behind Fig. 7 of the paper: the unitary
``U = exp(iH)`` is compiled from the Pauli decomposition
``H = Σ_P c_P P`` by exponentiating one Pauli string at a time,

    exp(i c P) = B† · (CNOT ladder) · RZ(-2c) · (CNOT ladder)† · B,

where ``B`` is the single-qubit basis change that maps each ``X``/``Y``
factor onto ``Z`` (``H`` for X, ``H·S†`` for Y).  A first- or second-order
Trotter product stitches the terms together; since the combinatorial
Laplacian's Pauli terms do not generally commute, the number of Trotter
steps controls the synthesis error (exercised by the
``bench_ablation_trotter`` benchmark).

The all-identity term contributes only a global phase ``e^{i c}``; it is kept
as an explicit phase gate because the QTDA circuit uses *controlled*
applications of ``U`` inside QPE, where a global phase on ``U`` becomes a
physical relative phase.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.linalg import expm

from repro.paulis.pauli_sum import PauliSum, PauliTerm
from repro.quantum.circuit import QuantumCircuit
from repro.utils.validation import check_positive_integer


def pauli_string_evolution_circuit(
    label: str,
    angle: float,
    num_qubits: int | None = None,
    circuit: QuantumCircuit | None = None,
) -> QuantumCircuit:
    """Circuit for ``exp(i * angle * P)`` where ``P`` is the Pauli string ``label``.

    Parameters
    ----------
    label:
        Pauli string such as ``"XYZ"``; character ``j`` acts on qubit ``j``.
    angle:
        The real coefficient multiplying the string in the exponent.
    num_qubits:
        Register size (defaults to ``len(label)``).
    circuit:
        Optional existing circuit to append to (returned for chaining).
    """
    label = str(label).upper()
    n = len(label) if num_qubits is None else int(num_qubits)
    if len(label) != n:
        raise ValueError("label length must equal num_qubits")
    circ = circuit if circuit is not None else QuantumCircuit(n, name=f"exp(i{angle:.3g}·{label})")

    support = [q for q, c in enumerate(label) if c != "I"]
    if not support:
        # exp(i c I) is a global phase.
        circ.global_phase(angle)
        return circ

    # Basis change onto Z for every non-identity factor.
    for q in support:
        pauli = label[q]
        if pauli == "X":
            circ.h(q)
        elif pauli == "Y":
            circ.sdg(q)
            circ.h(q)
        # Z needs no change.

    # CNOT parity ladder onto the last support qubit.
    target = support[-1]
    for q in support[:-1]:
        circ.cnot(q, target)

    # exp(i c Z...Z) acts as e^{+ic} on even parity, e^{-ic} on odd parity,
    # which is RZ(-2c) on the parity qubit.
    circ.rz(-2.0 * float(angle), target)

    # Undo the ladder and the basis changes.
    for q in reversed(support[:-1]):
        circ.cnot(q, target)
    for q in support:
        pauli = label[q]
        if pauli == "X":
            circ.h(q)
        elif pauli == "Y":
            circ.h(q)
            circ.s(q)
    return circ


def pauli_evolution_circuit(
    hamiltonian: PauliSum,
    time: float = 1.0,
    trotter_steps: int = 1,
    order: int = 1,
    name: str = "exp(iHt)",
) -> QuantumCircuit:
    """Trotterised circuit for ``exp(i * time * H)`` with ``H`` a :class:`PauliSum`.

    Parameters
    ----------
    hamiltonian:
        Hermitian Pauli sum (real coefficients).
    time:
        Evolution "time" multiplying ``H`` in the exponent (the paper uses
        ``time = 1`` because the rescaling is folded into ``H`` already).
    trotter_steps:
        Number of repetitions ``r`` of the product formula.
    order:
        1 for the first-order (Lie–Trotter) product, 2 for the symmetric
        second-order (Strang) splitting.

    Returns
    -------
    QuantumCircuit
        Circuit on ``hamiltonian.num_qubits`` qubits.
    """
    steps = check_positive_integer(trotter_steps, "trotter_steps")
    if order not in (1, 2):
        raise ValueError("order must be 1 or 2")
    if not hamiltonian.is_hermitian:
        raise ValueError("Hamiltonian must have real coefficients for unitary evolution")

    n = hamiltonian.num_qubits
    circ = QuantumCircuit(n, name=name)
    terms: Sequence[PauliTerm] = hamiltonian.terms()
    if not terms:
        return circ

    dt = float(time) / steps
    for _ in range(steps):
        if order == 1:
            for term in terms:
                pauli_string_evolution_circuit(term.label, float(term.coefficient.real) * dt, num_qubits=n, circuit=circ)
        else:
            for term in terms:
                pauli_string_evolution_circuit(term.label, float(term.coefficient.real) * dt / 2.0, num_qubits=n, circuit=circ)
            for term in reversed(terms):
                pauli_string_evolution_circuit(term.label, float(term.coefficient.real) * dt / 2.0, num_qubits=n, circuit=circ)
    return circ


def exact_evolution_unitary(hamiltonian: PauliSum | np.ndarray, time: float = 1.0) -> np.ndarray:
    """Dense reference ``exp(i * time * H)`` via :func:`scipy.linalg.expm`."""
    mat = hamiltonian.to_matrix() if isinstance(hamiltonian, PauliSum) else np.asarray(hamiltonian, dtype=complex)
    return expm(1j * float(time) * mat)


def trotter_unitary_error(
    hamiltonian: PauliSum,
    time: float = 1.0,
    trotter_steps: int = 1,
    order: int = 1,
) -> float:
    """Spectral-norm error ``||U_trotter - exp(iHt)||`` of the synthesised circuit."""
    circuit = pauli_evolution_circuit(hamiltonian, time=time, trotter_steps=trotter_steps, order=order)
    approx = circuit.to_unitary()
    exact = exact_evolution_unitary(hamiltonian, time=time)
    return float(np.linalg.norm(approx - exact, ord=2))
