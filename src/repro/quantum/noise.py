"""Per-gate noise model — now a thin compatibility adapter over the channel IR.

The Kraus factories and the channel registry moved to
:mod:`repro.quantum.channels`, which is the shared layer consumed by the
density-matrix simulator, the ensemble engine's trajectory route, and the
readout stage.  This module re-exports the factories (so existing imports
keep working) and keeps :class:`NoiseModel` as the density-route adapter:
a plain list of single-qubit Kraus operators applied after every (filtered)
gate, optionally carrying a :class:`~repro.quantum.channels.NoiseSpec` whose
placement rules (per-gate-class strengths, correlated two-qubit channel)
then drive the density contraction instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.quantum.channels import (  # noqa: F401  (compatibility re-exports)
    NOISE_CHANNELS,
    TWO_QUBIT_NOISE_CHANNELS,
    NoiseSpec,
    QuantumChannel,
    amplitude_damping_kraus,
    bit_flip_kraus,
    depolarizing_kraus,
    is_trace_preserving,
    phase_flip_kraus,
    two_qubit_depolarizing_kraus,
)
from repro.quantum.operations import Gate


@dataclass
class NoiseModel:
    """Applies a single-qubit channel to every qubit touched by every gate.

    Attributes
    ----------
    kraus_ops:
        Single-qubit Kraus operators applied (independently) to each qubit a
        gate acts on, immediately after the gate.
    gate_filter:
        Optional set of gate names the noise applies to; ``None`` means all
        gates.
    channel_name, strength:
        Set by the named constructors so :meth:`describe` can report *which*
        channel ran (``None`` for hand-built Kraus lists).
    spec:
        Optional :class:`NoiseSpec`.  When present, its placement rules
        (per-gate-class strength overrides, correlated two-qubit channel)
        replace the flat per-qubit loop in :meth:`apply_after_gate`; models
        built from a bare channel name leave it unset, keeping the legacy
        density path bit-identical.
    """

    kraus_ops: List[np.ndarray] = field(default_factory=lambda: depolarizing_kraus(0.0))
    gate_filter: frozenset | None = None
    channel_name: Optional[str] = None
    strength: Optional[float] = None
    spec: Optional[NoiseSpec] = None

    def __post_init__(self):
        self.kraus_ops = [np.asarray(k, dtype=complex) for k in self.kraus_ops]
        if not self.kraus_ops or any(k.shape != (2, 2) for k in self.kraus_ops):
            raise ValueError("NoiseModel expects single-qubit (2x2) Kraus operators")
        if not is_trace_preserving(self.kraus_ops):
            raise ValueError("Kraus operators do not satisfy the completeness relation")
        if self.gate_filter is not None:
            self.gate_filter = frozenset(self.gate_filter)

    @classmethod
    def depolarizing(cls, p: float, gate_filter: Sequence[str] | None = None) -> "NoiseModel":
        """Uniform depolarising noise of strength ``p`` after every (filtered) gate."""
        return cls(
            depolarizing_kraus(p),
            frozenset(gate_filter) if gate_filter else None,
            channel_name="depolarizing",
            strength=p,
        )

    @classmethod
    def bit_flip(cls, p: float) -> "NoiseModel":
        return cls(bit_flip_kraus(p), channel_name="bit-flip", strength=p)

    @classmethod
    def amplitude_damping(cls, gamma: float) -> "NoiseModel":
        return cls(
            amplitude_damping_kraus(gamma), channel_name="amplitude-damping", strength=gamma
        )

    @classmethod
    def from_channel(cls, channel: str, strength: float) -> "NoiseModel":
        """Build a model from a channel name (see :data:`NOISE_CHANNELS`)."""
        kraus = QuantumChannel.from_name(channel, strength)
        if kraus.arity != 1:
            raise ValueError(
                f"NoiseModel.from_channel expects a single-qubit channel, got {channel!r}"
            )
        return cls(list(kraus.kraus_ops), channel_name=channel, strength=float(strength))

    @classmethod
    def from_spec(cls, spec: NoiseSpec) -> "NoiseModel":
        """Adapt a :class:`NoiseSpec` for the density-matrix route.

        The baseline channel's Kraus list is kept for introspection; the
        actual placement in :meth:`apply_after_gate` defers to
        ``spec.channels_for_gate`` so per-gate-class strengths and the
        correlated two-qubit channel behave identically to the trajectory
        route.
        """
        if spec.channel is not None:
            base = list(QuantumChannel.from_name(spec.channel, spec.strength).kraus_ops)
        else:
            base = depolarizing_kraus(0.0)
        return cls(base, channel_name=spec.channel, strength=spec.strength, spec=spec)

    def to_spec(self) -> Optional[NoiseSpec]:
        """The :class:`NoiseSpec` this model expresses, or ``None``.

        Hand-built Kraus lists and gate filters have no spec form — such
        models can only run on the density-matrix route (the trajectory
        router checks this).
        """
        if self.spec is not None:
            return self.spec
        if self.channel_name is not None and self.gate_filter is None:
            return NoiseSpec.from_legacy(self.channel_name, self.strength or 0.0)
        return None

    def applies_to(self, gate: Gate) -> bool:
        return self.gate_filter is None or gate.name in self.gate_filter

    def apply_after_gate(self, rho_tensor: np.ndarray, gate: Gate, num_qubits: int) -> np.ndarray:
        """Apply the channel(s) after ``gate`` on a density tensor."""
        from repro.quantum.density_matrix import apply_kraus

        if not self.applies_to(gate):
            return rho_tensor
        if self.spec is not None:
            for channel, qubits in self.spec.channels_for_gate(gate):
                rho_tensor = apply_kraus(rho_tensor, channel.kraus_ops, list(qubits), num_qubits)
            return rho_tensor
        for q in gate.qubits:
            rho_tensor = apply_kraus(rho_tensor, self.kraus_ops, [q], num_qubits)
        return rho_tensor

    def describe(self) -> Dict[str, object]:
        """Summary dictionary (used in experiment reports)."""
        info: Dict[str, object] = {
            "channel": self.channel_name,
            "strength": self.strength,
            "num_kraus": len(self.kraus_ops),
            "gate_filter": sorted(self.gate_filter) if self.gate_filter else "all",
        }
        if self.spec is not None:
            info["spec"] = self.spec.describe()
        elif self.channel_name is not None:
            info["spec"] = NoiseSpec.from_legacy(self.channel_name, self.strength or 0.0).describe()
        return info
