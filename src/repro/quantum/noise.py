"""Noise channels (Kraus maps) and a simple per-gate noise model.

The paper's experiments are noiseless, but its conclusion explicitly flags
"how the algorithm behaves on NISQ devices" as the next question.  This
module provides the standard single-qubit channels and a
:class:`NoiseModel` that injects a channel after every gate, which the
ablation benchmark ``benchmarks/test_bench_ablation_noise.py`` uses to sweep
depolarising strength against Betti-number error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.quantum.operations import Gate
from repro.utils.validation import check_probability

_I = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)


def bit_flip_kraus(p: float) -> List[np.ndarray]:
    """Bit-flip channel: X applied with probability ``p``."""
    p = check_probability(p, "p")
    return [np.sqrt(1 - p) * _I, np.sqrt(p) * _X]


def phase_flip_kraus(p: float) -> List[np.ndarray]:
    """Phase-flip channel: Z applied with probability ``p``."""
    p = check_probability(p, "p")
    return [np.sqrt(1 - p) * _I, np.sqrt(p) * _Z]


def depolarizing_kraus(p: float) -> List[np.ndarray]:
    """Single-qubit depolarising channel with error probability ``p``.

    With probability ``p`` the qubit is replaced by the maximally mixed state,
    implemented as the uniform Pauli twirl ``{X, Y, Z}`` each with ``p/3``.
    """
    p = check_probability(p, "p")
    return [
        np.sqrt(1 - p) * _I,
        np.sqrt(p / 3.0) * _X,
        np.sqrt(p / 3.0) * _Y,
        np.sqrt(p / 3.0) * _Z,
    ]


def amplitude_damping_kraus(gamma: float) -> List[np.ndarray]:
    """Amplitude damping (T1 decay) with damping probability ``gamma``."""
    gamma = check_probability(gamma, "gamma")
    k0 = np.array([[1, 0], [0, np.sqrt(1 - gamma)]], dtype=complex)
    k1 = np.array([[0, np.sqrt(gamma)], [0, 0]], dtype=complex)
    return [k0, k1]


#: Channel-name -> Kraus-factory map used by :meth:`NoiseModel.from_channel`
#: (and, through ``QTDAConfig.noise_channel``, by the ``noisy-density``
#: estimator backend).
_CHANNEL_FACTORIES = {
    "depolarizing": depolarizing_kraus,
    "bit-flip": bit_flip_kraus,
    "phase-flip": phase_flip_kraus,
    "amplitude-damping": amplitude_damping_kraus,
}

#: Names accepted by :meth:`NoiseModel.from_channel` / ``QTDAConfig.noise_channel``.
NOISE_CHANNELS = tuple(sorted(_CHANNEL_FACTORIES))


def is_trace_preserving(kraus_ops: Sequence[np.ndarray], atol: float = 1e-9) -> bool:
    """Check the completeness relation ``Σ_k K_k† K_k = I``."""
    dim = kraus_ops[0].shape[0]
    total = sum(k.conj().T @ k for k in kraus_ops)
    return bool(np.allclose(total, np.eye(dim), atol=atol))


@dataclass
class NoiseModel:
    """Applies a single-qubit channel to every qubit touched by every gate.

    Attributes
    ----------
    kraus_ops:
        Single-qubit Kraus operators applied (independently) to each qubit a
        gate acts on, immediately after the gate.
    gate_filter:
        Optional set of gate names the noise applies to; ``None`` means all
        gates.
    """

    kraus_ops: List[np.ndarray] = field(default_factory=lambda: depolarizing_kraus(0.0))
    gate_filter: frozenset | None = None

    def __post_init__(self):
        self.kraus_ops = [np.asarray(k, dtype=complex) for k in self.kraus_ops]
        if not self.kraus_ops or any(k.shape != (2, 2) for k in self.kraus_ops):
            raise ValueError("NoiseModel expects single-qubit (2x2) Kraus operators")
        if not is_trace_preserving(self.kraus_ops):
            raise ValueError("Kraus operators do not satisfy the completeness relation")
        if self.gate_filter is not None:
            self.gate_filter = frozenset(self.gate_filter)

    @classmethod
    def depolarizing(cls, p: float, gate_filter: Sequence[str] | None = None) -> "NoiseModel":
        """Uniform depolarising noise of strength ``p`` after every (filtered) gate."""
        return cls(depolarizing_kraus(p), frozenset(gate_filter) if gate_filter else None)

    @classmethod
    def bit_flip(cls, p: float) -> "NoiseModel":
        return cls(bit_flip_kraus(p))

    @classmethod
    def amplitude_damping(cls, gamma: float) -> "NoiseModel":
        return cls(amplitude_damping_kraus(gamma))

    @classmethod
    def from_channel(cls, channel: str, strength: float) -> "NoiseModel":
        """Build a model from a channel name (see :data:`NOISE_CHANNELS`)."""
        try:
            factory = _CHANNEL_FACTORIES[channel]
        except KeyError:
            raise ValueError(
                f"Unknown noise channel {channel!r}; available channels: {', '.join(NOISE_CHANNELS)}"
            ) from None
        return cls(factory(strength))

    def applies_to(self, gate: Gate) -> bool:
        return self.gate_filter is None or gate.name in self.gate_filter

    def apply_after_gate(self, rho_tensor: np.ndarray, gate: Gate, num_qubits: int) -> np.ndarray:
        """Apply the per-qubit channel after ``gate`` on a density tensor."""
        from repro.quantum.density_matrix import apply_kraus

        if not self.applies_to(gate):
            return rho_tensor
        for q in gate.qubits:
            rho_tensor = apply_kraus(rho_tensor, self.kraus_ops, [q], num_qubits)
        return rho_tensor

    def describe(self) -> Dict[str, object]:
        """Summary dictionary (used in experiment reports)."""
        return {
            "num_kraus": len(self.kraus_ops),
            "gate_filter": sorted(self.gate_filter) if self.gate_filter else "all",
        }
