"""repro — reproduction of "Quantum-Enhanced Topological Data Analysis" (arXiv:2302.09553).

The package is organised as a set of substrates plus the paper's core
algorithm:

* :mod:`repro.paulis` — Pauli strings, Pauli decomposition, Gershgorin bounds.
* :mod:`repro.quantum` — gate-level quantum circuit simulators (statevector
  and density matrix), QFT/QPE builders, Trotterised Pauli evolution, noise.
* :mod:`repro.tda` — simplicial complexes, Vietoris–Rips construction,
  boundary operators, combinatorial Laplacians, classical Betti numbers,
  persistence, Takens embedding.
* :mod:`repro.core` — the QPE-based Betti-number estimator (the paper's
  contribution) and the point-cloud-to-features pipeline.
* :mod:`repro.api` — the service-grade front door: typed requests
  (``EstimationRequest``, ``PipelineRequest``, ``SweepRequest``,
  ``ExperimentRequest``), the ``EstimationResult`` envelope with provenance,
  and the concurrent ``QTDAService`` executor (DESIGN.md §10).
* :mod:`repro.serve` — the network deployment of that service: a stdlib
  HTTP/JSON adapter with request coalescing, per-caller quotas, metrics on
  ``GET /v1/stats`` and a load-test client (DESIGN.md §15).
* :mod:`repro.ml` — minimal classical ML (logistic regression, kNN, scaling,
  splitting, metrics) used for the Section 5 classification experiments.
* :mod:`repro.datasets` — synthetic gearbox vibration data and reference
  point clouds.
* :mod:`repro.experiments` — drivers that regenerate each table and figure.

Quick start — one request in, one result envelope out::

    import numpy as np
    from repro import EstimationRequest, QTDAService
    from repro.tda import RipsComplex

    points = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, 1.0], [2.0, 1.0], [2.5, 0.2]])
    request = EstimationRequest(
        points=points, epsilon=1.5, k=1,
        config={"precision_qubits": 4, "shots": 1000, "seed": 7},
    )
    with QTDAService() as service:
        result = service.run(request)
    print(result.payload["betti_estimate"], result.payload["betti_rounded"])
    print(result.provenance.backend, result.provenance.wall_time_s)

The same service fans batches across a worker pool (``service.map``), runs
requests asynchronously (``service.submit``) and streams ε-sweeps
incrementally (``service.stream_sweep``).  Heavy single requests can shard
the circuit engine's batch axis across CPU processes — or CuPy devices via
``REPRO_ARRAY_MODULE=cupy`` / ``QTDAConfig.devices`` — with
``config={"shards": 4}`` (bit-identical to the unsharded run; see DESIGN.md
§14).  The pre-service entry points remain available and bit-identical::

    from repro import QTDABettiEstimator

    complex_ = RipsComplex.from_points(points, epsilon=1.5, max_dimension=2).complex()
    estimator = QTDABettiEstimator(precision_qubits=4, shots=1000, seed=7)
    result = estimator.estimate(complex_, k=1)
    print(result.betti_estimate, result.betti_rounded)
"""

from repro._version import __version__

#: Names this module re-exports lazily, keyed by the submodule serving them.
#: ``__all__`` and ``__getattr__`` are both derived from this table, so the
#: advertised surface and the served surface cannot drift apart (regression-
#: tested by ``tests/test_package.py``).
_LAZY_EXPORTS = {
    "repro.core": (
        "QTDABettiEstimator",
        "BettiEstimate",
        "QTDAPipeline",
        "PipelineConfig",
        "QTDAConfig",
        "BatchConfig",
        "BatchFeatureEngine",
        "ZNEResult",
        "richardson_extrapolate",
        "zero_noise_extrapolation",
    ),
    "repro.api": (
        "EstimationRequest",
        "PipelineRequest",
        "SweepRequest",
        "ExperimentRequest",
        "EstimationResult",
        "Provenance",
        "QTDAService",
        "request_from_dict",
        "deterministic_request",
    ),
    "repro.serve": (
        "QTDAServer",
        "ServeConfig",
        "ServiceClient",
    ),
    "repro.tda": (
        "RipsComplex",
        "SimplicialComplex",
    ),
    "repro.quantum": (
        "EnsembleExecutor",
        "QuantumCircuit",
        "ShardPlan",
        "ShardedExecutor",
        "StatevectorSimulator",
    ),
}

__all__ = ["__version__"] + [name for names in _LAZY_EXPORTS.values() for name in names]


def __getattr__(name):
    """Lazily re-export the headline classes to keep import time low."""
    for module_name, names in _LAZY_EXPORTS.items():
        if name in names:
            import importlib

            return getattr(importlib.import_module(module_name), name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__))
