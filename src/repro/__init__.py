"""repro — reproduction of "Quantum-Enhanced Topological Data Analysis" (arXiv:2302.09553).

The package is organised as a set of substrates plus the paper's core
algorithm:

* :mod:`repro.paulis` — Pauli strings, Pauli decomposition, Gershgorin bounds.
* :mod:`repro.quantum` — gate-level quantum circuit simulators (statevector
  and density matrix), QFT/QPE builders, Trotterised Pauli evolution, noise.
* :mod:`repro.tda` — simplicial complexes, Vietoris–Rips construction,
  boundary operators, combinatorial Laplacians, classical Betti numbers,
  persistence, Takens embedding.
* :mod:`repro.core` — the QPE-based Betti-number estimator (the paper's
  contribution) and the point-cloud-to-features pipeline.
* :mod:`repro.ml` — minimal classical ML (logistic regression, kNN, scaling,
  splitting, metrics) used for the Section 5 classification experiments.
* :mod:`repro.datasets` — synthetic gearbox vibration data and reference
  point clouds.
* :mod:`repro.experiments` — drivers that regenerate each table and figure.

Quick start::

    from repro import QTDABettiEstimator
    from repro.tda import RipsComplex
    import numpy as np

    points = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, 1.0], [2.0, 1.0], [2.5, 0.2]])
    complex_ = RipsComplex.from_points(points, epsilon=1.5, max_dimension=2).complex()
    estimator = QTDABettiEstimator(precision_qubits=4, shots=1000, seed=7)
    result = estimator.estimate(complex_, k=1)
    print(result.betti_estimate, result.betti_rounded)
"""

from repro._version import __version__

__all__ = ["__version__"]


def __getattr__(name):  # pragma: no cover - thin lazy-import shim
    """Lazily re-export the headline classes to keep import time low."""
    if name in {"QTDABettiEstimator", "BettiEstimate", "QTDAPipeline", "PipelineConfig"}:
        from repro import core

        return getattr(core, name)
    if name in {"RipsComplex", "SimplicialComplex"}:
        from repro import tda

        return getattr(tda, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
