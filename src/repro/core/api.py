"""``repro.api`` — the unified, service-grade front door (DESIGN.md §10).

The repo grew four parallel entry points — ``QTDABettiEstimator.estimate``,
``QTDAPipeline.transform_*``, ``BatchFeatureEngine.run/sweep`` and the
per-figure experiment drivers — each with its own argument conventions,
seeding and result shape.  This module puts one typed request/response layer
over all of them:

* **Requests** are frozen, validated, hashable dataclasses with a versioned
  wire format (``as_dict``/``from_dict``, ``schema_version``):
  :class:`EstimationRequest` (one Betti estimate),
  :class:`PipelineRequest` (a batch of clouds/series/distance matrices to
  Betti features), :class:`SweepRequest` (a batch × ε-grid sweep),
  :class:`ExperimentRequest` (a named paper experiment) and
  :class:`ObserveRequest` (raw samples fed to a named online streaming
  session, served by the incremental sweep engine — DESIGN.md §13).
* **Results** always arrive in the same :class:`EstimationResult` envelope:
  a payload (the numbers a legacy entry point would have returned) plus
  :class:`Provenance` — backend name, negotiated operator format,
  spectrum-cache hit/miss deltas, wall time, seed and ``betti_std`` when the
  backend reports one.
* :class:`QTDAService` is the long-lived executor: it owns the shared
  :class:`~repro.core.hamiltonian.SpectrumCache`, a result cache and a worker
  pool.  ``run()`` is the sync path, ``submit()`` returns a future,
  ``map()`` fans a batch of requests across the pool, and ``stream_sweep()``
  yields per-ε results incrementally instead of materialising whole sweeps.

Numerics are bit-identical to the legacy entry points — the service routes
into exactly the same estimator/engine/driver code paths, and the regression
tests in ``tests/core/test_api.py`` pin that equivalence.
"""

from __future__ import annotations

import atexit
import copy
import hashlib
import json
import threading
import time
import weakref
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, ClassVar, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.backends import backend_capabilities, get_backend, preferred_format
from repro.core.batch import BatchConfig, BatchFeatureEngine, StreamingFeatureEngine
from repro.core.config import QTDAConfig
from repro.core.estimator import QTDABettiEstimator
from repro.core.hamiltonian import SpectrumCache
from repro.core.pipeline import PipelineConfig
from repro.tda.complexes import SimplicialComplex
from repro.tda.rips import RipsComplex
from repro.tda.takens import TakensEmbedding
from repro.utils.validation import check_integer

#: Version of the request/result wire format.  Bump on any incompatible
#: change to the dictionaries emitted by ``as_dict`` (consumers validate it
#: through :meth:`EstimationResult.validate_dict`).
#: History: 4 — provenance gained required ``shards``/``shard_backend``/
#: ``device`` fields and ``QTDAConfig`` gained ``shards``/``shard_backend``/
#: ``devices`` (request fingerprints changed); 3 — provenance gained required
#: ``n_trajectories``/``noise_spec`` fields and ``QTDAConfig`` gained the
#: :class:`repro.quantum.channels.NoiseSpec` fields plus
#: ``n_trajectories``/``fuse_purified`` (request fingerprints changed); 2 —
#: provenance gained required ``engine_route``/``fused_gates`` fields and
#: ``QTDAConfig`` gained ``circuit_engine`` (request fingerprints changed);
#: 1 — initial service wire format.
SCHEMA_VERSION = 4

#: The request kinds the service understands, in dispatch order.
#: ``observe`` (added within schema version 3 — purely additive) feeds raw
#: time-series samples into a named streaming session and returns the windows
#: they completed (DESIGN.md §13).
REQUEST_KINDS = ("estimate", "pipeline", "sweep", "experiment", "observe")

#: Experiments addressable through :class:`ExperimentRequest` (the CLI
#: subcommand names).
EXPERIMENT_NAMES = ("fig3", "table1", "fig4", "appendix", "timeseries")


# ---------------------------------------------------------------------------
# Canonicalisation helpers
# ---------------------------------------------------------------------------


def _json_safe(value: Any) -> Any:
    """Recursively convert ``value`` into plain JSON-serialisable data."""
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, Mapping):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_json_safe(v) for v in value]
    raise TypeError(f"value of type {type(value).__name__} is not JSON-serialisable: {value!r}")


def canonical_json(data: Mapping[str, Any]) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace) of ``data``."""
    return json.dumps(_json_safe(data), sort_keys=True, separators=(",", ":"))


def _freeze(value: Any) -> Any:
    """Recursively convert sequences/arrays/mappings to tuples (hashable).

    Mappings become ``tuple(sorted((key, value), ...))`` pairs; consumers
    that need the mapping back call ``dict(...)`` on them (the experiment
    runners do this for nested ``batch`` configs).
    """
    if isinstance(value, np.ndarray):
        value = value.tolist()
    if isinstance(value, Mapping):
        return tuple(sorted((str(k), _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value


def _freeze_clouds(clouds: Any, name: str) -> Tuple[Tuple[Tuple[float, ...], ...], ...]:
    """Normalise a sequence of point clouds to nested float tuples."""
    frozen = []
    for i, cloud in enumerate(clouds):
        arr = np.asarray(cloud, dtype=float)
        if arr.ndim != 2:
            raise ValueError(f"{name}[{i}] must be a 2-D point cloud, got shape {arr.shape}")
        frozen.append(tuple(tuple(float(x) for x in row) for row in arr))
    return tuple(frozen)


def _freeze_matrix(matrix: Any, name: str) -> Tuple[Tuple[float, ...], ...]:
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
    return tuple(tuple(float(x) for x in row) for row in arr)


def _request_hash(self) -> int:
    """Content hash shared by every request class (see :meth:`fingerprint`).

    Requests whose config cannot serialise (an explicit ``noise_model``
    object) fall back to a per-type constant: they all collide in one hash
    bucket, but set/dict membership stays correct through ``__eq__``.
    """
    try:
        return hash((type(self).__name__, self.fingerprint()))
    except (TypeError, ValueError):
        return hash(type(self).__name__)


class _RequestBase:
    """Shared wire-format machinery of the request dataclasses."""

    kind: ClassVar[str]
    schema_version: ClassVar[int] = SCHEMA_VERSION

    def as_dict(self) -> Dict[str, Any]:  # pragma: no cover - overridden
        raise NotImplementedError

    def fingerprint(self) -> str:
        """Stable content hash of the request (the service's cache key).

        Computed once per instance (requests are frozen, so the digest is
        memoised) — repeated hashing/cache lookups do not re-serialise the
        geometry.
        """
        cached = getattr(self, "_fingerprint_cache", None)
        if cached is None:
            cached = hashlib.sha256(canonical_json(self.as_dict()).encode("utf-8")).hexdigest()
            object.__setattr__(self, "_fingerprint_cache", cached)
        return cached

    def replace(self, **overrides) -> "Request":
        """Copy with selected fields overridden (re-runs all validation)."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **overrides)

    def _envelope(self, body: Dict[str, Any]) -> Dict[str, Any]:
        return {"schema_version": self.schema_version, "kind": self.kind, **body}

    @staticmethod
    def _check_dict(data: Mapping[str, Any], expected_kind: str) -> Dict[str, Any]:
        data = dict(data)
        if "schema_version" not in data:
            # Unversioned documents are rejected rather than assumed current:
            # a future schema change must not silently misread old payloads.
            raise ValueError("request dict is missing 'schema_version'")
        version = data.pop("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported schema_version {version!r}; this build speaks version {SCHEMA_VERSION}"
            )
        kind = data.pop("kind", expected_kind)
        if kind != expected_kind:
            raise ValueError(f"expected a {expected_kind!r} request, got kind={kind!r}")
        return data


# ---------------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EstimationRequest(_RequestBase):
    """One Betti-number estimation (the ``QTDABettiEstimator.estimate`` shape).

    Exactly one of ``simplices`` (an explicit simplicial complex) or
    ``points`` (a point cloud turned into a Rips complex at grouping scale
    ``epsilon``) must be given.  All geometry is normalised to nested tuples
    in ``__post_init__`` so requests are immutable and hashable; the nested
    :class:`~repro.core.config.QTDAConfig` carries every estimator knob.
    """

    kind: ClassVar[str] = "estimate"

    k: int = 1
    simplices: Optional[Tuple[Tuple[int, ...], ...]] = None
    points: Optional[Tuple[Tuple[float, ...], ...]] = None
    epsilon: Optional[float] = None
    max_dimension: Optional[int] = None
    compute_exact: bool = True
    config: QTDAConfig = field(default_factory=QTDAConfig)

    __hash__ = _request_hash

    def __post_init__(self):
        object.__setattr__(self, "k", check_integer(self.k, "k", minimum=0))
        if (self.simplices is None) == (self.points is None):
            raise ValueError("exactly one of 'simplices' and 'points' must be provided")
        if self.simplices is not None:
            if self.epsilon is not None or self.max_dimension is not None:
                raise ValueError("'epsilon'/'max_dimension' only apply to point-cloud requests")
            simplices = tuple(tuple(int(v) for v in s) for s in self.simplices)
            if not simplices:
                raise ValueError("'simplices' must not be empty")
            object.__setattr__(self, "simplices", simplices)
        else:
            if self.epsilon is None:
                raise ValueError("point-cloud requests require 'epsilon'")
            epsilon = float(self.epsilon)
            if epsilon < 0:
                raise ValueError("epsilon must be non-negative")
            object.__setattr__(self, "epsilon", epsilon)
            max_dim = self.max_dimension if self.max_dimension is not None else self.k + 1
            object.__setattr__(
                self, "max_dimension", check_integer(max_dim, "max_dimension", minimum=self.k + 1)
            )
            cloud = np.asarray(self.points, dtype=float)
            if cloud.ndim != 2 or cloud.shape[0] == 0:
                raise ValueError(f"'points' must be a non-empty 2-D cloud, got shape {cloud.shape}")
            object.__setattr__(
                self, "points", tuple(tuple(float(x) for x in row) for row in cloud)
            )
        if isinstance(self.config, Mapping):
            object.__setattr__(self, "config", QTDAConfig.from_dict(dict(self.config)))
        elif isinstance(self.config, QTDAConfig):
            # Private copy: QTDAConfig is a plain mutable dataclass, and the
            # caller may keep mutating their object after building requests.
            object.__setattr__(self, "config", copy.deepcopy(self.config))
        else:
            raise TypeError("config must be a QTDAConfig (or a QTDAConfig.as_dict mapping)")

    @property
    def seed(self) -> Optional[int]:
        return self.config.seed if isinstance(self.config.seed, (int, np.integer)) else None

    def build_complex(self) -> SimplicialComplex:
        """Materialise the simplicial complex this request describes."""
        if self.simplices is not None:
            return SimplicialComplex(self.simplices)
        return RipsComplex.from_points(
            np.asarray(self.points, dtype=float), self.epsilon, max_dimension=self.max_dimension
        ).complex()

    def geometry_fingerprint(self) -> str:
        """Stable hash of the *geometry only* (complex/cloud, not the config).

        Two requests share a geometry fingerprint exactly when they build the
        same simplicial complex and hence the same Laplacians — the serving
        layer groups such requests so one execution warms the shared
        :class:`~repro.core.hamiltonian.SpectrumCache` for the others.
        Memoised like :meth:`fingerprint` (requests are frozen).
        """
        cached = getattr(self, "_geometry_fingerprint_cache", None)
        if cached is None:
            document = {
                "simplices": self.simplices,
                "points": self.points,
                "epsilon": self.epsilon,
                "max_dimension": self.max_dimension,
            }
            cached = hashlib.sha256(canonical_json(document).encode("utf-8")).hexdigest()
            object.__setattr__(self, "_geometry_fingerprint_cache", cached)
        return cached

    def as_dict(self) -> Dict[str, Any]:
        return self._envelope(
            {
                "k": self.k,
                "simplices": self.simplices,
                "points": self.points,
                "epsilon": self.epsilon,
                "max_dimension": self.max_dimension,
                "compute_exact": self.compute_exact,
                "config": self.config.as_dict(),
            }
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EstimationRequest":
        body = cls._check_dict(data, cls.kind)
        if body.get("config") is not None:
            body["config"] = QTDAConfig.from_dict(
                {k: _freeze(v) for k, v in dict(body["config"]).items()}
            )
        for key in ("simplices", "points"):
            if body.get(key) is not None:
                body[key] = _freeze(body[key])
        return cls(**body)


def _freeze_pipeline_inputs(self) -> None:
    """Shared input normalisation of PipelineRequest/SweepRequest."""
    given = [
        name
        for name in ("point_clouds", "time_series", "distance_matrices")
        if getattr(self, name, None) is not None
    ]
    allowed = self._input_fields
    if len(given) != 1 or given[0] not in allowed:
        raise ValueError(f"exactly one of {allowed} must be provided, got {given or 'none'}")
    if getattr(self, "point_clouds", None) is not None:
        object.__setattr__(self, "point_clouds", _freeze_clouds(self.point_clouds, "point_clouds"))
    if getattr(self, "time_series", None) is not None:
        arr = np.asarray(self.time_series, dtype=float)
        if arr.ndim != 2:
            raise ValueError("time_series must be 2-D: one series per row")
        object.__setattr__(self, "time_series", tuple(tuple(float(x) for x in row) for row in arr))
    if getattr(self, "distance_matrices", None) is not None:
        object.__setattr__(
            self,
            "distance_matrices",
            tuple(_freeze_matrix(m, f"distance_matrices[{i}]") for i, m in enumerate(self.distance_matrices)),
        )
    if isinstance(self.pipeline, Mapping):
        object.__setattr__(self, "pipeline", PipelineConfig.from_dict(dict(self.pipeline)))
    elif isinstance(self.pipeline, PipelineConfig):
        # Private copies: the config dataclasses are mutable and the caller
        # may keep mutating their objects after building requests.
        object.__setattr__(self, "pipeline", copy.deepcopy(self.pipeline))
    else:
        raise TypeError("pipeline must be a PipelineConfig (or its as_dict mapping)")
    if isinstance(self.batch, Mapping):
        object.__setattr__(self, "batch", BatchConfig.from_dict(dict(self.batch)))
    elif isinstance(self.batch, BatchConfig):
        object.__setattr__(self, "batch", copy.deepcopy(self.batch))
    else:
        raise TypeError("batch must be a BatchConfig (or its as_dict mapping)")


@dataclass(frozen=True)
class PipelineRequest(_RequestBase):
    """A batch of samples to Betti-feature rows (the ``transform_*`` shape).

    Exactly one of ``point_clouds``, ``time_series`` (delay-embedded through
    the pipeline's Takens settings) or ``distance_matrices`` must be given.
    ``include_exact`` additionally returns the exact classical features
    (only meaningful for point clouds, mirroring
    :meth:`BatchFeatureEngine.features_and_exact`).
    """

    kind: ClassVar[str] = "pipeline"
    _input_fields: ClassVar[Tuple[str, ...]] = ("point_clouds", "time_series", "distance_matrices")

    point_clouds: Optional[Tuple[Tuple[Tuple[float, ...], ...], ...]] = None
    time_series: Optional[Tuple[Tuple[float, ...], ...]] = None
    distance_matrices: Optional[Tuple[Tuple[Tuple[float, ...], ...], ...]] = None
    epsilon: Optional[float] = None
    include_exact: bool = False
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    batch: BatchConfig = field(default_factory=BatchConfig)

    __hash__ = _request_hash

    def __post_init__(self):
        _freeze_pipeline_inputs(self)
        if self.epsilon is not None:
            epsilon = float(self.epsilon)
            if epsilon < 0:
                raise ValueError("epsilon must be non-negative")
            object.__setattr__(self, "epsilon", epsilon)
        if self.include_exact and self.point_clouds is None:
            raise ValueError("include_exact=True requires point_clouds input")

    @property
    def seed(self) -> Optional[int]:
        seed = self.pipeline.estimator.seed
        return seed if isinstance(seed, (int, np.integer)) else None

    @property
    def deterministic(self) -> bool:
        """Whether re-running this request is guaranteed to reproduce results."""
        return not self.pipeline.use_quantum or self.seed is not None

    def as_dict(self) -> Dict[str, Any]:
        return self._envelope(
            {
                "point_clouds": self.point_clouds,
                "time_series": self.time_series,
                "distance_matrices": self.distance_matrices,
                "epsilon": self.epsilon,
                "include_exact": self.include_exact,
                "pipeline": self.pipeline.as_dict(),
                "batch": self.batch.as_dict(),
            }
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PipelineRequest":
        body = cls._check_dict(data, cls.kind)
        if body.get("pipeline") is not None:
            body["pipeline"] = PipelineConfig.from_dict(_freeze_config_dict(body["pipeline"]))
        if body.get("batch") is not None:
            body["batch"] = BatchConfig.from_dict(dict(body["batch"]))
        return cls(**body)


@dataclass(frozen=True)
class SweepRequest(_RequestBase):
    """A batch of samples × an ε-grid (the ``BatchFeatureEngine.sweep`` shape).

    ``QTDAService.run`` materialises the full ``(E, N, F)`` feature tensor;
    ``QTDAService.stream_sweep`` yields one per-ε result at a time instead —
    same numbers, incremental delivery.
    """

    kind: ClassVar[str] = "sweep"
    _input_fields: ClassVar[Tuple[str, ...]] = ("point_clouds", "time_series")

    epsilons: Tuple[float, ...] = ()
    point_clouds: Optional[Tuple[Tuple[Tuple[float, ...], ...], ...]] = None
    time_series: Optional[Tuple[Tuple[float, ...], ...]] = None
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    batch: BatchConfig = field(default_factory=BatchConfig)

    __hash__ = _request_hash

    def __post_init__(self):
        _freeze_pipeline_inputs(self)
        epsilons = tuple(float(e) for e in self.epsilons)
        if not epsilons:
            raise ValueError("epsilons must not be empty")
        if any(e < 0 for e in epsilons):
            raise ValueError("epsilons must be non-negative")
        object.__setattr__(self, "epsilons", epsilons)

    @property
    def seed(self) -> Optional[int]:
        seed = self.pipeline.estimator.seed
        return seed if isinstance(seed, (int, np.integer)) else None

    @property
    def deterministic(self) -> bool:
        return not self.pipeline.use_quantum or self.seed is not None

    def clouds(self) -> List[np.ndarray]:
        """The point clouds to sweep (delay-embedding time series if needed)."""
        if self.point_clouds is not None:
            return [np.asarray(c, dtype=float) for c in self.point_clouds]
        embedder = TakensEmbedding(
            dimension=self.pipeline.takens_dimension,
            delay=self.pipeline.takens_delay,
            stride=self.pipeline.takens_stride,
        )
        return [embedder.transform(np.asarray(row, dtype=float)) for row in self.time_series]

    def as_dict(self) -> Dict[str, Any]:
        return self._envelope(
            {
                "epsilons": self.epsilons,
                "point_clouds": self.point_clouds,
                "time_series": self.time_series,
                "pipeline": self.pipeline.as_dict(),
                "batch": self.batch.as_dict(),
            }
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepRequest":
        body = cls._check_dict(data, cls.kind)
        if body.get("pipeline") is not None:
            body["pipeline"] = PipelineConfig.from_dict(_freeze_config_dict(body["pipeline"]))
        if body.get("batch") is not None:
            body["batch"] = BatchConfig.from_dict(dict(body["batch"]))
        return cls(**body)


def _freeze_config_dict(data: Mapping[str, Any]) -> Dict[str, Any]:
    """Tuple-ify the sequence-valued fields of a config mapping (JSON round trip)."""
    return {k: _freeze(v) if isinstance(v, (list, tuple)) else v for k, v in dict(data).items()}


@dataclass(frozen=True)
class ExperimentRequest(_RequestBase):
    """One named paper experiment (the experiment-driver shape).

    ``experiment`` names a driver (:data:`EXPERIMENT_NAMES`); ``params`` are
    its keyword arguments, stored as a sorted tuple of ``(name, value)``
    pairs so the request stays hashable — pass a plain dict, it is normalised
    in ``__post_init__``.  The payload carries the driver result's
    ``as_dict()`` view plus the rendered text ``report`` the CLI prints.
    """

    kind: ClassVar[str] = "experiment"

    experiment: str = ""
    params: Tuple[Tuple[str, Any], ...] = ()

    __hash__ = _request_hash

    def __post_init__(self):
        if self.experiment not in EXPERIMENT_NAMES:
            raise ValueError(
                f"experiment must be one of {EXPERIMENT_NAMES}, got {self.experiment!r}"
            )
        params = self.params
        if isinstance(params, Mapping):
            items = params.items()
        else:
            items = list(params)
        normalised = tuple(sorted((str(k), _freeze(v)) for k, v in items))
        names = [k for k, _ in normalised]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parameter names in {names}")
        object.__setattr__(self, "params", normalised)

    @property
    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    @property
    def seed(self) -> Optional[int]:
        seed = self.param_dict.get("seed")
        return seed if isinstance(seed, (int, np.integer)) else None

    def as_dict(self) -> Dict[str, Any]:
        return self._envelope({"experiment": self.experiment, "params": self.param_dict})

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentRequest":
        body = cls._check_dict(data, cls.kind)
        return cls(experiment=body.get("experiment", ""), params=dict(body.get("params", {})))


@dataclass(frozen=True)
class ObserveRequest(_RequestBase):
    """A chunk of raw time-series samples for an online streaming session.

    The live-serving shape (DESIGN.md §13): samples are appended to the
    named ``session``'s buffer, and every sliding window they complete is
    Takens-embedded and advanced *incrementally* through
    :class:`repro.core.batch.StreamingFeatureEngine` — bit-identical features
    to a from-scratch sweep over the same windows, at delta cost.  The first
    request for a session creates it; later requests must carry the same
    window/stride/epsilons/pipeline configuration (each request is
    self-contained on the wire, so any replica holding the session state can
    validate it).  ``samples`` may be empty (a priming request that just
    opens the session).

    Observe requests are *stateful* — the same request legitimately returns
    different windows depending on what the session saw before — so they are
    never result-cached and carry an empty ``request_fingerprint``.
    """

    kind: ClassVar[str] = "observe"

    samples: Tuple[float, ...] = ()
    session: str = "default"
    window_length: int = 0
    stride: int = 1
    epsilons: Tuple[float, ...] = ()
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)

    __hash__ = _request_hash

    def __post_init__(self):
        if not isinstance(self.session, str) or not self.session:
            raise ValueError("session must be a non-empty string")
        arr = np.asarray(self.samples, dtype=float)
        if arr.ndim > 1:
            raise ValueError("samples must be a 1-D sequence of raw time-series values")
        object.__setattr__(self, "samples", tuple(float(x) for x in arr.reshape(-1)))
        object.__setattr__(
            self, "window_length", check_integer(self.window_length, "window_length", minimum=1)
        )
        object.__setattr__(self, "stride", check_integer(self.stride, "stride", minimum=1))
        epsilons = tuple(float(e) for e in self.epsilons)
        if not epsilons:
            raise ValueError("epsilons must not be empty")
        if any(e < 0 for e in epsilons):
            raise ValueError("epsilons must be non-negative")
        object.__setattr__(self, "epsilons", epsilons)
        if isinstance(self.pipeline, Mapping):
            object.__setattr__(self, "pipeline", PipelineConfig.from_dict(dict(self.pipeline)))
        elif isinstance(self.pipeline, PipelineConfig):
            object.__setattr__(self, "pipeline", copy.deepcopy(self.pipeline))
        else:
            raise TypeError("pipeline must be a PipelineConfig (or its as_dict mapping)")

    @property
    def seed(self) -> Optional[int]:
        seed = self.pipeline.estimator.seed
        return seed if isinstance(seed, (int, np.integer)) else None

    @property
    def deterministic(self) -> bool:
        """Always false: the response depends on the session's prior samples."""
        return False

    def session_config(self) -> Dict[str, Any]:
        """The session-defining configuration (must match across a session)."""
        return {
            "window_length": self.window_length,
            "stride": self.stride,
            "epsilons": list(self.epsilons),
            "pipeline": self.pipeline.as_dict(),
        }

    def as_dict(self) -> Dict[str, Any]:
        return self._envelope(
            {
                "samples": self.samples,
                "session": self.session,
                "window_length": self.window_length,
                "stride": self.stride,
                "epsilons": self.epsilons,
                "pipeline": self.pipeline.as_dict(),
            }
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ObserveRequest":
        body = cls._check_dict(data, cls.kind)
        if body.get("pipeline") is not None:
            body["pipeline"] = PipelineConfig.from_dict(_freeze_config_dict(body["pipeline"]))
        for key in ("samples", "epsilons"):
            if body.get(key) is not None:
                body[key] = _freeze(body[key])
        return cls(**body)


#: Any request the service accepts.
Request = Union[
    EstimationRequest, PipelineRequest, SweepRequest, ExperimentRequest, ObserveRequest
]

_REQUEST_CLASSES: Dict[str, type] = {
    cls.kind: cls
    for cls in (
        EstimationRequest,
        PipelineRequest,
        SweepRequest,
        ExperimentRequest,
        ObserveRequest,
    )
}


def request_from_dict(data: Mapping[str, Any]) -> Request:
    """Rebuild any request from its ``as_dict`` form (dispatch on ``kind``)."""
    kind = dict(data).get("kind")
    try:
        cls = _REQUEST_CLASSES[kind]
    except KeyError:
        raise ValueError(f"unknown request kind {kind!r}; valid kinds: {REQUEST_KINDS}") from None
    return cls.from_dict(data)


def deterministic_request(request: Request) -> bool:
    """Whether two runs of ``request`` are guaranteed to produce equal results.

    This is the shared reuse predicate: the service result cache and the
    serving layer's in-flight coalescer (:mod:`repro.serve.coalescer`) both
    refuse to substitute one execution's result for another unless it holds.

    * ``observe`` requests are stateful by design — the response depends on
      the session's buffered samples — so they are never deterministic here.
    * Pipeline/sweep requests expose their own :attr:`~PipelineRequest.
      deterministic` (classical-only, or quantum with a fixed seed).
    * Experiment driver seeds all default to fixed integers; only an
      explicit ``None`` (or generator) seed makes a run non-reproducible.
    * Single estimations are deterministic exactly when seeded.
    """
    if isinstance(request, ObserveRequest):
        return False
    if isinstance(request, (PipelineRequest, SweepRequest)):
        return request.deterministic
    if isinstance(request, ExperimentRequest):
        return request.param_dict.get("seed", 0) is not None
    return request.seed is not None


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Provenance:
    """How a result was produced (stamped on every :class:`EstimationResult`).

    ``cache_hits``/``cache_misses`` are the service spectrum-cache deltas
    observed while the request ran; under concurrent execution they are a
    best-effort attribution (the counters are shared), while totals remain
    exact through :attr:`QTDAService.stats`.  ``engine_route``/``fused_gates``
    record, for single-estimate requests on circuit backends, the concrete
    circuit-execution route taken (``ensemble``/``ptm``/``trajectory``/
    ``purified``/``density``, DESIGN.md §11–12, §16) and the post-fusion
    block count (fused gates on the ensemble engine, fused superoperators on
    the PTM route); ``n_trajectories``/``noise_spec`` record the trajectory-route
    repetition count and the resolved noise description the run executed
    under (``None`` for noiseless runs); ``shards``/``shard_backend``/
    ``device`` record how the engine's batch/trajectory axis was sharded and
    where the shards ran (:mod:`repro.quantum.sharding`; ``None`` for
    unsharded runs).
    """

    request_kind: str
    request_fingerprint: str
    backend: str
    operator_format: str
    seed: Optional[int]
    wall_time_s: float
    cache_hits: int = 0
    cache_misses: int = 0
    betti_std: Optional[float] = None
    result_cache_hit: bool = False
    engine_route: Optional[str] = None
    fused_gates: Optional[int] = None
    n_trajectories: Optional[int] = None
    noise_spec: Optional[Dict[str, Any]] = None
    shards: Optional[int] = None
    shard_backend: Optional[str] = None
    device: Optional[str] = None
    schema_version: int = SCHEMA_VERSION

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "request_kind": self.request_kind,
            "request_fingerprint": self.request_fingerprint,
            "backend": self.backend,
            "operator_format": self.operator_format,
            "seed": self.seed,
            "wall_time_s": self.wall_time_s,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "betti_std": self.betti_std,
            "result_cache_hit": self.result_cache_hit,
            "engine_route": self.engine_route,
            "fused_gates": self.fused_gates,
            "n_trajectories": self.n_trajectories,
            "noise_spec": self.noise_spec,
            "shards": self.shards,
            "shard_backend": self.shard_backend,
            "device": self.device,
        }


#: Fields every serialised provenance record must carry (the documented schema).
_PROVENANCE_FIELDS = (
    "schema_version",
    "request_kind",
    "request_fingerprint",
    "backend",
    "operator_format",
    "seed",
    "wall_time_s",
    "cache_hits",
    "cache_misses",
    "betti_std",
    "result_cache_hit",
    "engine_route",
    "fused_gates",
    "n_trajectories",
    "noise_spec",
    "shards",
    "shard_backend",
    "device",
)


@dataclass(frozen=True)
class EstimationResult:
    """The single response envelope of the service API.

    ``payload`` holds exactly what the corresponding legacy entry point
    returns (``BettiEstimate.as_dict()``, feature matrices, an experiment
    result's ``as_dict()``); ``provenance`` records how it was produced.
    ``as_dict``/``to_json`` emit the versioned wire format that
    :meth:`validate_dict` checks (the CI api-smoke gate).
    """

    request: Request
    payload: Dict[str, Any]
    provenance: Provenance
    schema_version: ClassVar[int] = SCHEMA_VERSION

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "kind": self.request.kind,
            "request": _json_safe(self.request.as_dict()),
            "payload": _json_safe(self.payload),
            "provenance": _json_safe(self.provenance.as_dict()),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The envelope as a JSON document (the CLI ``--json`` output)."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=indent is None)

    @staticmethod
    def validate_dict(data: Mapping[str, Any]) -> None:
        """Raise ``ValueError`` unless ``data`` matches the documented schema.

        Checks the envelope shape (DESIGN.md §10): versioned top level, a
        known request kind, a request body whose kind/version agree, a dict
        payload and a complete provenance record.  Used by the tests and the
        CI api-smoke job to keep emitted JSON honest.
        """
        if not isinstance(data, Mapping):
            raise ValueError(f"result must be a mapping, got {type(data).__name__}")
        if data.get("schema_version") != SCHEMA_VERSION:
            raise ValueError(f"schema_version must be {SCHEMA_VERSION}, got {data.get('schema_version')!r}")
        kind = data.get("kind")
        if kind not in REQUEST_KINDS:
            raise ValueError(f"kind must be one of {REQUEST_KINDS}, got {kind!r}")
        request = data.get("request")
        if not isinstance(request, Mapping):
            raise ValueError("request must be a mapping")
        if request.get("kind") != kind:
            raise ValueError(f"request.kind {request.get('kind')!r} does not match envelope kind {kind!r}")
        if request.get("schema_version") != SCHEMA_VERSION:
            raise ValueError("request.schema_version missing or mismatched")
        if not isinstance(data.get("payload"), Mapping):
            raise ValueError("payload must be a mapping")
        provenance = data.get("provenance")
        if not isinstance(provenance, Mapping):
            raise ValueError("provenance must be a mapping")
        missing = [name for name in _PROVENANCE_FIELDS if name not in provenance]
        if missing:
            raise ValueError(f"provenance is missing fields: {missing}")
        if provenance.get("request_kind") != kind:
            raise ValueError("provenance.request_kind does not match envelope kind")
        if not isinstance(provenance.get("wall_time_s"), (int, float)):
            raise ValueError("provenance.wall_time_s must be a number")
        # The request body must round-trip through the typed layer.  An empty
        # fingerprint means the service never computed one (uncacheable run);
        # a present fingerprint must match the body.
        rebuilt = request_from_dict(request)
        fingerprint = provenance.get("request_fingerprint")
        if fingerprint and rebuilt.fingerprint() != fingerprint:
            raise ValueError("provenance.request_fingerprint does not match the request body")


# ---------------------------------------------------------------------------
# Experiment dispatch
# ---------------------------------------------------------------------------


def _run_fig3(params: Dict[str, Any]) -> Tuple[Dict[str, Any], str, Optional[int]]:
    from repro.experiments.shots_precision import (
        ShotsPrecisionConfig,
        error_trend_summary,
        render_shots_precision_results,
        run_shots_precision_experiment,
    )

    params = dict(params)
    if params.pop("paper_scale", False):
        config = ShotsPrecisionConfig.paper_scale()
        backend = params.pop("backend", None)
        if backend is not None:
            config.backend = backend
        if params:
            raise TypeError(
                f"paper-scale fig3 only accepts a 'backend' override, got {sorted(params)}"
            )
    else:
        config = ShotsPrecisionConfig(**params)
    result = run_shots_precision_experiment(config)
    report = (
        render_shots_precision_results(result)
        + f"\n\nTrend summary: {error_trend_summary(result)}"
    )
    payload = result.as_dict()
    payload["report"] = report
    return payload, config.backend, config.seed if isinstance(config.seed, int) else None


def _run_table1(params: Dict[str, Any]) -> Tuple[Dict[str, Any], str, Optional[int]]:
    from repro.experiments.gearbox_table1 import (
        GearboxExperimentConfig,
        render_table1,
        run_gearbox_table1,
    )

    params = dict(params)
    paper_scale = params.pop("paper_scale", False)
    if params.get("batch") is not None:
        params["batch"] = BatchConfig.from_dict(dict(params["batch"]))
    else:
        params.pop("batch", None)
    if paper_scale:
        # Everything else stays at the paper-scale defaults (which ARE the
        # dataclass defaults for table1); reject typo'd overrides instead of
        # silently ignoring them.
        allowed = {
            "batch",
            "backend",
            "noise_channel",
            "noise_strength",
            "circuit_engine",
            "n_trajectories",
            "readout_error",
            "shards",
            "shard_backend",
        }
        unknown = set(params) - allowed
        if unknown:
            raise TypeError(
                f"paper-scale table1 only accepts {sorted(allowed)} overrides, got {sorted(unknown)}"
            )
    config = GearboxExperimentConfig(**params)
    result = run_gearbox_table1(config)
    payload = result.as_dict()
    payload["report"] = render_table1(result)
    return payload, config.backend, config.seed if isinstance(config.seed, int) else None


def _run_fig4(params: Dict[str, Any]) -> Tuple[Dict[str, Any], str, Optional[int]]:
    from repro.experiments.grouping_scale import (
        GroupingScaleConfig,
        render_grouping_scale_results,
        run_grouping_scale_experiment,
    )

    params = dict(params)
    paper_scale = params.pop("paper_scale", False)
    if params.get("batch") is not None:
        params["batch"] = BatchConfig.from_dict(dict(params["batch"]))
    else:
        params.pop("batch", None)
    if paper_scale:
        config = GroupingScaleConfig.paper_scale()
        batch = params.pop("batch", None)
        if batch is not None:
            config.batch = batch
        if params:
            raise TypeError(
                f"paper-scale fig4 only accepts a 'batch' override, got {sorted(params)}"
            )
    else:
        config = GroupingScaleConfig(**params)
    result = run_grouping_scale_experiment(config)
    payload = result.as_dict()
    payload["report"] = render_grouping_scale_results(result)
    # Fig. 4 sweeps exact classical features only — same convention as
    # _pipeline_backend for use_quantum=False.
    return payload, "classical-exact", config.seed if isinstance(config.seed, int) else None


def _run_appendix(params: Dict[str, Any]) -> Tuple[Dict[str, Any], str, Optional[int]]:
    from repro.experiments.worked_example import render_worked_example, run_worked_example

    params = dict(params)
    result = run_worked_example(**params)
    payload = result.as_dict()
    payload["report"] = render_worked_example(result)
    seed = params.get("seed", 1)
    return payload, result.estimate.backend, seed if isinstance(seed, int) else None


def _run_timeseries(params: Dict[str, Any]) -> Tuple[Dict[str, Any], str, Optional[int]]:
    from repro.experiments.gearbox_table1 import run_timeseries_classification

    params = dict(params)
    if "batch" in params and params["batch"] is not None:
        params["batch"] = BatchConfig.from_dict(dict(params["batch"]))
    result = run_timeseries_classification(**params)
    payload = result.as_dict()
    windowing = (
        f", window stride = {result.window_stride}" if result.window_stride is not None else ""
    )
    payload["report"] = (
        f"Section 5 time-series classification ({result.num_windows} windows, "
        f"eps = {result.epsilon:.3f}{windowing})\n"
        f"training accuracy   = {result.training_accuracy:.3f}\n"
        f"validation accuracy = {result.validation_accuracy:.3f}"
    )
    if result.streaming:
        advances = sum(s.get("incremental_advances", 0) for s in result.streaming_stats.values())
        rebuilds = sum(s.get("full_builds", 0) for s in result.streaming_stats.values())
        payload["report"] += (
            f"\nstreaming engine    : {advances} incremental advances, {rebuilds} full builds"
        )
    if params.get("use_quantum", True):
        backend = params.get("backend", "exact")
    else:
        # Same convention as _pipeline_backend: no quantum backend ran.
        backend = "classical-exact"
    seed = params.get("seed", 7)
    return payload, backend, seed if isinstance(seed, int) else None


_EXPERIMENT_RUNNERS = {
    "fig3": _run_fig3,
    "table1": _run_table1,
    "fig4": _run_fig4,
    "appendix": _run_appendix,
    "timeseries": _run_timeseries,
}


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------

#: Live (not yet closed) services, tracked weakly so tracking never extends a
#: service's lifetime.  The interpreter-exit hook closes whatever is left —
#: a service abandoned without ``close()`` must not leave shard worker
#: processes behind — then tears down the process-wide shard pools.
_LIVE_SERVICES: "weakref.WeakSet[QTDAService]" = weakref.WeakSet()
_ATEXIT_LOCK = threading.Lock()
_ATEXIT_REGISTERED = False


def _close_live_services() -> None:
    """Interpreter-exit hook: close leaked services, then the shard pools."""
    for service in list(_LIVE_SERVICES):
        try:
            service.close()
        except Exception:  # pragma: no cover - nothing to do at exit
            pass
    from repro.quantum.sharding import shutdown_shard_pools

    shutdown_shard_pools()


def _track_service(service: "QTDAService") -> None:
    global _ATEXIT_REGISTERED
    with _ATEXIT_LOCK:
        # Lazy registration keeps import side-effect free: the hook exists
        # only once the first service does.
        if not _ATEXIT_REGISTERED:
            atexit.register(_close_live_services)
            _ATEXIT_REGISTERED = True
        _LIVE_SERVICES.add(service)


class _ObserveSession:
    """Server-side state of one named streaming session.

    ``key`` is the canonical JSON of the creating request's
    :meth:`ObserveRequest.session_config` — later requests for the same
    session name must reproduce it exactly.  ``lock`` serialises sample
    feeds: the engine's buffer is stateful, so two concurrent ``observe``
    calls for one session must not interleave.
    """

    __slots__ = ("engine", "key", "lock")

    def __init__(self, engine: StreamingFeatureEngine, key: Optional[str]):
        self.engine = engine
        self.key = key
        self.lock = threading.Lock()


class QTDAService:
    """Long-lived executor behind the request/response API.

    Owns the shared resources every execution path reuses:

    * one thread-safe :class:`SpectrumCache` handed to every estimator and
      batch engine (identical Laplacians are diagonalised once per service,
      not once per request);
    * an LRU result cache keyed by request fingerprint — repeating a
      *deterministic* request (seeded, or classical-only) is served without
      recomputation, flagged via ``provenance.result_cache_hit``;
    * a lazily started worker pool for :meth:`submit`/:meth:`map`.

    Per-request seeds live inside the requests themselves, so results are
    reproducible regardless of submission or completion order; the service
    adds no RNG state of its own.  Use as a context manager (or call
    :meth:`close`) to shut the pool down deterministically.

    Examples
    --------
    >>> from repro.core.api import EstimationRequest, QTDAService
    >>> request = EstimationRequest(
    ...     simplices=((0,), (1,), (2,), (0, 1), (0, 2), (1, 2)), k=1,
    ...     config={"precision_qubits": 4, "shots": None, "seed": 7},
    ... )
    >>> with QTDAService() as service:
    ...     service.run(request).payload["betti_rounded"]   # the hollow triangle
    1
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        spectrum_cache_size: int = 1024,
        result_cache_size: int = 256,
    ):
        if max_workers is not None:
            max_workers = check_integer(max_workers, "max_workers", minimum=1)
        self.max_workers = max_workers
        self.spectrum_cache: Optional[SpectrumCache] = (
            SpectrumCache(spectrum_cache_size) if spectrum_cache_size > 0 else None
        )
        self.result_cache_size = check_integer(result_cache_size, "result_cache_size", minimum=0)
        self._results: "OrderedDict[str, EstimationResult]" = OrderedDict()
        self._lock = threading.Lock()
        self._sessions: Dict[str, _ObserveSession] = {}
        self._sessions_lock = threading.Lock()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._closed = False
        self.result_cache_hits = 0
        self._executors: Dict[str, Any] = {}
        self._executors_lock = threading.Lock()
        _track_service(self)

    # -- lifecycle ------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down; pending futures finish first.

        Idempotent — the second and later calls return immediately, so the
        interpreter-exit hook (every service is registered with ``atexit``
        on construction) can close a service the caller already closed.
        Registered shard executors are closed too, and the process-wide
        shard pools are torn down once no executors remain registered
        anywhere obvious — closing a service is the "I'm done with sharding"
        signal (pools recreate on demand, so this is always safe).
        """
        with self._pool_lock:
            if self._closed:
                return
            pool, self._pool = self._pool, None
            self._closed = True
        _LIVE_SERVICES.discard(self)
        if pool is not None:
            pool.shutdown(wait=True)
        with self._sessions_lock:
            self._sessions.clear()
        with self._executors_lock:
            executors, self._executors = dict(self._executors), {}
        for executor in executors.values():
            executor.close()
        if executors:
            from repro.quantum.sharding import shutdown_shard_pools

            shutdown_shard_pools()

    def __enter__(self) -> "QTDAService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def stats(self) -> Dict[str, Any]:
        """Counters of the shared caches (exact totals, unlike per-request deltas)."""
        with self._lock:
            cached = len(self._results)
            result_hits = self.result_cache_hits
        spectrum = (
            {
                "hits": self.spectrum_cache.hits,
                "misses": self.spectrum_cache.misses,
                "entries": len(self.spectrum_cache),
            }
            if self.spectrum_cache is not None
            else None
        )
        with self._sessions_lock:
            sessions = len(self._sessions)
        return {
            "result_cache_entries": cached,
            "result_cache_hits": result_hits,
            "spectrum_cache": spectrum,
            "open_sessions": sessions,
        }

    def cache_stats(self) -> Dict[str, Any]:
        """Flat, JSON-safe cumulative cache counters (for CLI envelopes).

        Unlike per-request :class:`Provenance` deltas these are service-lifetime
        totals; ``spectrum_hit_rate`` is ``None`` until the first lookup.
        """
        with self._lock:
            entries = len(self._results)
            result_hits = self.result_cache_hits
        if self.spectrum_cache is not None:
            hits = self.spectrum_cache.hits
            misses = self.spectrum_cache.misses
            total = hits + misses
            spectrum = {
                "spectrum_hits": hits,
                "spectrum_misses": misses,
                "spectrum_entries": len(self.spectrum_cache),
                "spectrum_hit_rate": (hits / total) if total else None,
            }
        else:
            spectrum = {
                "spectrum_hits": 0,
                "spectrum_misses": 0,
                "spectrum_entries": 0,
                "spectrum_hit_rate": None,
            }
        return {
            "result_cache_entries": entries,
            "result_cache_hits": result_hits,
            **spectrum,
        }

    # -- executor registry ----------------------------------------------------
    def register_executor(self, name: str, executor: Any) -> None:
        """Register a shard-executor profile under ``name``.

        ``executor`` is a :class:`~repro.quantum.sharding.ShardedExecutor`
        (or anything exposing ``num_shards``/``backend``/``devices`` and
        ``close()``).  :meth:`submit`/:meth:`map` can then schedule
        estimation requests onto it by name: the request's config is
        rewritten to the executor's shard settings before execution, so one
        service can spread a stream of requests across, say, a CPU process
        pool and one profile per GPU.  Registered executors are closed by
        :meth:`close`.
        """
        if not name:
            raise ValueError("executor name must be non-empty")
        with self._executors_lock:
            if name in self._executors:
                raise ValueError(f"executor {name!r} is already registered")
            self._executors[name] = executor

    @property
    def executors(self) -> Tuple[str, ...]:
        """Names of the registered shard executors (sorted)."""
        with self._executors_lock:
            return tuple(sorted(self._executors))

    def _resolve_executor(self, name: str) -> Any:
        with self._executors_lock:
            try:
                return self._executors[name]
            except KeyError:
                raise ValueError(
                    f"unknown executor {name!r}; registered: {sorted(self._executors)}"
                ) from None

    @staticmethod
    def _request_on_executor(request: Request, executor: Any) -> Request:
        """The request rewritten to run on ``executor``'s shard settings.

        Only estimation requests carry a circuit-engine config; other kinds
        pass through unchanged (their work has no shardable batch axis yet).
        """
        if not isinstance(request, EstimationRequest):
            return request
        config = request.config.replace(
            shards=int(executor.num_shards),
            shard_backend=str(executor.backend),
            devices=getattr(executor, "devices", None),
        )
        return replace(request, config=config)

    # -- public API -----------------------------------------------------------
    def run(self, request: Request) -> EstimationResult:
        """Execute one request synchronously and return its result envelope.

        The request fingerprint (an O(dataset) canonical-JSON hash) is only
        computed when the request is result-cacheable; uncacheable runs —
        including every call from the :class:`~repro.core.pipeline.
        QTDAPipeline` shim, whose private service disables the result cache —
        skip it and carry an empty ``provenance.request_fingerprint``.
        Requests whose config cannot serialise (an explicit ``noise_model``
        object) execute fine; they are simply uncacheable and their envelope
        cannot be emitted as JSON.
        """
        self._check_request(request)
        fingerprint = self._fingerprint_or_none(request) if self._cacheable(request) else None
        if fingerprint is not None:
            cached = self._cached_result(fingerprint)
            if cached is not None:
                return cached
        hits0, misses0 = self._cache_counters()
        start = time.perf_counter()
        payload, backend_name, operator_format, seed, extras = self._execute(request)
        wall = time.perf_counter() - start
        hits1, misses1 = self._cache_counters()
        provenance = Provenance(
            request_kind=request.kind,
            request_fingerprint=fingerprint if fingerprint is not None else "",
            backend=backend_name,
            operator_format=operator_format,
            seed=seed,
            wall_time_s=wall,
            cache_hits=hits1 - hits0,
            cache_misses=misses1 - misses0,
            **extras,
        )
        result = EstimationResult(request=request, payload=payload, provenance=provenance)
        if fingerprint is not None:
            self._store_result(fingerprint, result)
        return result

    def submit(
        self, request: Request, executor: Optional[str] = None
    ) -> "Future[EstimationResult]":
        """Schedule a request on the worker pool; returns a future.

        Results are identical to :meth:`run` — per-request seeds make them
        independent of scheduling order — and land in the shared result
        cache, so repeating a request after a prior completion is served
        without recomputation.  In-flight duplicates are *not* merged at
        this layer; deploy behind :class:`repro.serve.RequestCoalescer`
        (what the HTTP server does) to deduplicate identical concurrent
        deterministic requests.

        ``executor`` names a registered shard executor
        (:meth:`register_executor`): the request is rewritten to that
        executor's ``shards``/``shard_backend``/``devices`` before running,
        so heavy estimations shard across its worker pool.  Sharding never
        changes numbers (bit-identical to unsharded), so the rewrite only
        affects provenance and throughput.
        """
        self._check_request(request)
        if executor is not None:
            request = self._request_on_executor(request, self._resolve_executor(executor))
        # The pool submission happens under the pool lock so a concurrent
        # close() either waits for it or makes this raise the service's own
        # closed error — never the executor's shutdown exception.
        with self._pool_lock:
            if self._closed:
                raise RuntimeError("QTDAService is closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers, thread_name_prefix="qtda-service"
                )
            return self._pool.submit(self.run, request)

    def map(
        self, requests: Iterable[Request], executor: Optional[str] = None
    ) -> List[EstimationResult]:
        """Fan a batch of requests across the pool; results in request order.

        ``executor`` routes every request onto a registered shard executor,
        as in :meth:`submit`.
        """
        futures = [self.submit(request, executor=executor) for request in requests]
        return [future.result() for future in futures]

    def run_dict(self, data: Mapping[str, Any]) -> EstimationResult:
        """Wire-format entry point: ``request_from_dict`` then :meth:`run`."""
        return self.run(request_from_dict(data))

    def observe(self, request: ObserveRequest) -> EstimationResult:
        """Feed samples into a streaming session; returns the completed windows.

        Sugar over :meth:`run` with an explicit type check — the online
        endpoint of the incremental sweep engine (DESIGN.md §13).  The
        payload lists one record per *newly completed* window, each with the
        per-ε feature matrix and the delta statistics (incremental vs full
        rebuild, simplices destroyed/created); features are bit-identical to
        a from-scratch batch sweep over the same windows.
        """
        if not isinstance(request, ObserveRequest):
            raise TypeError(f"observe expects an ObserveRequest, got {type(request).__name__}")
        return self.run(request)

    def close_session(self, session: str = "default") -> bool:
        """Drop a streaming session's state; ``True`` if it existed."""
        with self._sessions_lock:
            return self._sessions.pop(session, None) is not None

    @property
    def open_sessions(self) -> Tuple[str, ...]:
        """Names of the currently open streaming sessions (sorted)."""
        with self._sessions_lock:
            return tuple(sorted(self._sessions))

    def stream_sweep(self, request: SweepRequest) -> Iterator[EstimationResult]:
        """Yield one per-ε :class:`EstimationResult` at a time for a sweep.

        Features are bit-identical to ``run(request)``'s stacked tensor (and
        to the legacy ``BatchFeatureEngine.sweep``) — only delivery changes:
        each grouping scale's ``(num_samples, num_features)`` block is
        yielded as soon as it is computed, with provenance (wall time and
        cache deltas covering that scale) populated on every envelope.
        Streaming results bypass the result cache.

        Execution note: streaming keeps per-sample estimator state alive
        across scales, which cannot migrate between processes, so a
        ``BatchConfig(backend="processes")`` request is executed on a
        *thread* pool here (see :meth:`BatchFeatureEngine.iter_sweep`).
        CPU-bound sweeps that need true process parallelism more than
        incremental delivery should use :meth:`run` instead.
        """
        if not isinstance(request, SweepRequest):
            raise TypeError(f"stream_sweep expects a SweepRequest, got {type(request).__name__}")
        # Validation and setup happen eagerly, at the call site; only the
        # per-ε execution lives in the returned generator.
        # Same fingerprint policy as run(): only computed for cacheable
        # requests (streams bypass the result cache, but the stamp lets
        # consumers correlate per-ε envelopes with the run() envelope).
        fingerprint = (
            (self._fingerprint_or_none(request) or "") if self._cacheable(request) else ""
        )
        engine = self._engine(request)
        return self._stream_sweep(request, engine, fingerprint)

    def _stream_sweep(
        self, request: SweepRequest, engine: BatchFeatureEngine, fingerprint: str
    ) -> Iterator[EstimationResult]:
        operator_format = engine.negotiated_operator_format()
        backend_name = self._pipeline_backend(request.pipeline)
        clouds = request.clouds()
        num_epsilons = len(request.epsilons)
        hits0, misses0 = self._cache_counters()
        start = time.perf_counter()
        for index, (epsilon, features) in enumerate(engine.iter_sweep(clouds, request.epsilons)):
            wall = time.perf_counter() - start
            hits1, misses1 = self._cache_counters()
            payload = {
                "epsilon": epsilon,
                "epsilon_index": index,
                "num_epsilons": num_epsilons,
                "features": features,
                "feature_names": list(engine.feature_names),
            }
            yield EstimationResult(
                request=request,
                payload=payload,
                provenance=Provenance(
                    request_kind=request.kind,
                    request_fingerprint=fingerprint,
                    backend=backend_name,
                    operator_format=operator_format,
                    seed=request.seed,
                    wall_time_s=wall,
                    cache_hits=hits1 - hits0,
                    cache_misses=misses1 - misses0,
                ),
            )
            hits0, misses0 = hits1, misses1
            start = time.perf_counter()

    # -- execution ------------------------------------------------------------
    def _check_request(self, request: Request) -> None:
        if not isinstance(request, tuple(_REQUEST_CLASSES.values())):
            raise TypeError(
                f"expected one of {[c.__name__ for c in _REQUEST_CLASSES.values()]}, "
                f"got {type(request).__name__}"
            )

    def _cache_counters(self) -> Tuple[int, int]:
        if self.spectrum_cache is None:
            return 0, 0
        return self.spectrum_cache.hits, self.spectrum_cache.misses

    def _cacheable(self, request: Request) -> bool:
        return self.result_cache_size > 0 and deterministic_request(request)

    @staticmethod
    def _fingerprint_or_none(request: Request) -> Optional[str]:
        """The request fingerprint, or ``None`` for unserialisable requests."""
        try:
            return request.fingerprint()
        except (TypeError, ValueError):
            return None

    def _cached_result(self, fingerprint: str) -> Optional[EstimationResult]:
        with self._lock:
            cached = self._results.get(fingerprint)
            if cached is None:
                return None
            self._results.move_to_end(fingerprint)
            self.result_cache_hits += 1
        # Deep-copied payload: callers may mutate returned feature arrays
        # in place (feature scaling etc.) without corrupting the cache.
        return replace(
            cached,
            payload=copy.deepcopy(cached.payload),
            provenance=replace(cached.provenance, result_cache_hit=True),
        )

    def _store_result(self, fingerprint: str, result: EstimationResult) -> None:
        # Store a private deep copy — the first caller's returned payload
        # must not alias the cache entry either.
        entry = replace(result, payload=copy.deepcopy(result.payload))
        with self._lock:
            self._results[fingerprint] = entry
            self._results.move_to_end(fingerprint)
            while len(self._results) > self.result_cache_size:
                self._results.popitem(last=False)

    def _engine(self, request: "PipelineRequest | SweepRequest") -> BatchFeatureEngine:
        return BatchFeatureEngine(
            request.pipeline, batch=request.batch, spectrum_cache=self.spectrum_cache
        )

    @staticmethod
    def _pipeline_backend(pipeline: PipelineConfig) -> str:
        return pipeline.estimator.backend if pipeline.use_quantum else "classical-exact"

    def _execute(
        self, request: Request
    ) -> Tuple[Dict[str, Any], str, str, Optional[int], Dict[str, Any]]:
        """Dispatch to the legacy execution paths.

        Returns ``(payload, backend, operator_format, seed, extras)`` where
        ``extras`` holds whatever optional :class:`Provenance` fields the
        execution produced (``betti_std``, ``engine_route``,
        ``shards``/``shard_backend``/``device``, ...) — ``run()`` splats it
        into the provenance record, so new execution-side provenance only
        needs to appear here.
        """
        if isinstance(request, EstimationRequest):
            estimator = QTDABettiEstimator(request.config, spectrum_cache=self.spectrum_cache)
            estimate = estimator.estimate(
                request.build_complex(), request.k, compute_exact=request.compute_exact
            )
            return (
                estimate.as_dict(),
                request.config.backend,
                estimator.operator_format,
                request.seed,
                {
                    "betti_std": estimate.betti_std,
                    "engine_route": estimate.engine_route,
                    "fused_gates": estimate.fused_gates,
                    "n_trajectories": estimate.n_trajectories,
                    "noise_spec": estimate.noise_spec,
                    "shards": estimate.shards,
                    "shard_backend": estimate.shard_backend,
                    "device": estimate.device,
                },
            )
        if isinstance(request, PipelineRequest):
            engine = self._engine(request)
            exact: Optional[np.ndarray] = None
            if request.point_clouds is not None:
                clouds = [np.asarray(c, dtype=float) for c in request.point_clouds]
                if request.include_exact:
                    features, exact = engine.features_and_exact(clouds, epsilon=request.epsilon)
                else:
                    features = engine.transform_point_clouds(clouds, epsilon=request.epsilon)
            elif request.time_series is not None:
                features = engine.transform_time_series(
                    np.asarray(request.time_series, dtype=float), epsilon=request.epsilon
                )
            else:
                matrices = [np.asarray(m, dtype=float) for m in request.distance_matrices]
                features = engine.transform_distance_matrices(matrices, epsilon=request.epsilon)
            payload: Dict[str, Any] = {
                "features": features,
                "feature_names": list(engine.feature_names),
                "num_samples": int(features.shape[0]),
                "epsilon": float(
                    request.epsilon if request.epsilon is not None else request.pipeline.epsilon
                ),
            }
            if exact is not None:
                payload["exact"] = exact
            return (
                payload,
                self._pipeline_backend(request.pipeline),
                engine.negotiated_operator_format(),
                request.seed,
                {},
            )
        if isinstance(request, SweepRequest):
            engine = self._engine(request)
            features = engine.sweep(request.clouds(), request.epsilons)
            payload = {
                "epsilons": list(request.epsilons),
                "features": features,
                "feature_names": list(engine.feature_names),
                "num_samples": int(features.shape[1]),
            }
            return (
                payload,
                self._pipeline_backend(request.pipeline),
                engine.negotiated_operator_format(),
                request.seed,
                {},
            )
        if isinstance(request, ObserveRequest):
            return self._execute_observe(request)
        # ExperimentRequest
        runner = _EXPERIMENT_RUNNERS[request.experiment]
        payload, backend_name, seed = runner(request.param_dict)
        try:
            operator_format = preferred_format(get_backend(backend_name))
        except ValueError:
            operator_format = "dense"
        return payload, backend_name, operator_format, seed, {}

    def _session_for(self, request: ObserveRequest) -> _ObserveSession:
        """Get or create the named session; validate the configuration key."""
        try:
            key: Optional[str] = canonical_json(request.session_config())
        except (TypeError, ValueError):
            # Unserialisable pipeline (explicit noise_model object): the
            # session still works, but config matching degrades to trusting
            # the caller (both sides carry a None key).
            key = None
        with self._sessions_lock:
            session = self._sessions.get(request.session)
            if session is None:
                engine = StreamingFeatureEngine(
                    request.pipeline,
                    window_length=request.window_length,
                    stride=request.stride,
                    epsilons=request.epsilons,
                    spectrum_cache=self.spectrum_cache,
                )
                session = _ObserveSession(engine, key)
                self._sessions[request.session] = session
        if session.key != key:
            raise ValueError(
                f"observe request for session {request.session!r} does not match the "
                "session's window_length/stride/epsilons/pipeline configuration; "
                "close_session() first to reconfigure"
            )
        return session

    def _execute_observe(
        self, request: ObserveRequest
    ) -> Tuple[Dict[str, Any], str, str, Optional[int], Dict[str, Any]]:
        session = self._session_for(request)
        with session.lock:
            engine = session.engine
            windows = engine.extend(request.samples)
            payload: Dict[str, Any] = {
                "session": request.session,
                "samples_seen": engine.samples_seen,
                "windows_emitted": engine.windows_emitted,
                "new_windows": len(windows),
                "epsilons": list(request.epsilons),
                "feature_names": list(engine.feature_names),
                "windows": [
                    {
                        "index": w.index,
                        "start": w.start,
                        "features": w.features,
                        "incremental": w.incremental,
                        "unchanged": w.unchanged,
                        "simplices_destroyed": w.simplices_destroyed,
                        "simplices_created": w.simplices_created,
                    }
                    for w in windows
                ],
                "engine_stats": dict(engine.stats),
            }
            operator_format = engine.negotiated_operator_format()
        return (
            payload,
            self._pipeline_backend(request.pipeline),
            operator_format,
            request.seed,
            {},
        )


def describe_backends() -> List[Dict[str, Any]]:
    """Capability records of every registered backend (JSON-safe)."""
    from repro.core.backends import available_backends

    return [_json_safe(backend_capabilities(get_backend(name))) for name in available_backends()]


__all__ = [
    "SCHEMA_VERSION",
    "REQUEST_KINDS",
    "EXPERIMENT_NAMES",
    "EstimationRequest",
    "PipelineRequest",
    "SweepRequest",
    "ExperimentRequest",
    "ObserveRequest",
    "Request",
    "request_from_dict",
    "deterministic_request",
    "Provenance",
    "EstimationResult",
    "QTDAService",
    "describe_backends",
    "canonical_json",
]
