"""Padding of the combinatorial Laplacian to a power-of-two dimension (Eq. 7).

QPE acts on ``q`` qubits, i.e. a ``2^q``-dimensional space, so the
``|S_k| x |S_k|`` Laplacian must be embedded into the next power of two.
The paper's observation: padding with zeros adds ``2^q - |S_k|`` spurious
zero eigenvalues, each of which QPE counts as a harmonic class and which must
be subtracted afterwards.  Padding instead with ``(λ̃_max / 2) · I`` — with
``λ̃_max`` the Gershgorin upper bound on the spectrum — places the padding
eigenvalues squarely in the middle of the non-zero spectrum, so the estimate
``β̃_k = 2^q p(0)`` needs no correction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.paulis.gershgorin import gershgorin_bound
from repro.utils.validation import check_symmetric


@dataclass(frozen=True)
class PaddedLaplacian:
    """Result of padding a combinatorial Laplacian.

    Attributes
    ----------
    matrix:
        The padded ``2^q x 2^q`` symmetric matrix ``Δ̃_k``.
    original_dimension:
        ``|S_k|``, the size of the unpadded Laplacian.
    num_qubits:
        ``q = ceil(log2 |S_k|)``.
    lambda_max:
        The Gershgorin estimate ``λ̃_max`` of the largest eigenvalue of the
        *unpadded* Laplacian (also used later for the spectral rescaling).
    mode:
        ``"identity"`` or ``"zero"``.
    """

    matrix: np.ndarray
    original_dimension: int
    num_qubits: int
    lambda_max: float
    mode: str

    @property
    def padded_dimension(self) -> int:
        """``2^q``."""
        return int(self.matrix.shape[0])

    @property
    def num_padding_rows(self) -> int:
        """``2^q - |S_k|`` — how many padding eigenvalues were introduced."""
        return self.padded_dimension - self.original_dimension

    def spurious_zero_eigenvalues(self) -> int:
        """Zero eigenvalues contributed by the padding block itself.

        Zero for identity padding (unless the Laplacian is identically zero,
        in which case λ̃_max = 0 and the padding block is zero too); equal to
        the number of padding rows for zero padding.
        """
        if self.mode == "zero" or self.lambda_max == 0.0:
            return self.num_padding_rows
        return 0


def _prepare(laplacian: np.ndarray) -> tuple[np.ndarray, int, int, float]:
    lap = check_symmetric(laplacian, "laplacian")
    dim = lap.shape[0]
    if dim == 0:
        raise ValueError("Cannot pad an empty (0x0) Laplacian; the complex has no k-simplices")
    num_qubits = max(1, int(np.ceil(np.log2(dim))))
    lam = gershgorin_bound(lap)
    return np.asarray(lap, dtype=float), dim, num_qubits, lam


def pad_laplacian(laplacian: np.ndarray, mode: str = "identity") -> PaddedLaplacian:
    """Pad ``Δ_k`` to ``2^q`` dimensions.

    Parameters
    ----------
    laplacian:
        The ``|S_k| x |S_k|`` combinatorial Laplacian.
    mode:
        ``"identity"`` — the paper's padding with ``(λ̃_max / 2) I`` (Eq. 7);
        ``"zero"`` — naive zero padding (the baseline the paper advises
        against), retained for the padding ablation benchmark.
    """
    if mode not in ("identity", "zero"):
        raise ValueError(f"Unknown padding mode {mode!r}")
    lap, dim, num_qubits, lam = _prepare(laplacian)
    padded_dim = 2**num_qubits
    padded = np.zeros((padded_dim, padded_dim), dtype=float)
    padded[:dim, :dim] = lap
    if mode == "identity" and padded_dim > dim:
        fill_value = lam / 2.0
        idx = np.arange(dim, padded_dim)
        padded[idx, idx] = fill_value
    return PaddedLaplacian(
        matrix=padded,
        original_dimension=dim,
        num_qubits=num_qubits,
        lambda_max=lam,
        mode=mode,
    )


def zero_pad_laplacian(laplacian: np.ndarray) -> PaddedLaplacian:
    """Convenience wrapper for the zero-padding baseline."""
    return pad_laplacian(laplacian, mode="zero")
