"""Backend protocol, result type and registry for Betti-number estimation.

A *backend* is one realisation of the Section 3 estimator: given a
combinatorial Laplacian it produces the QPE precision-register readout
distribution from which ``β̃_k = 2^q · p(0)`` follows (Eqs. 10–11).  The
paper itself admits several interchangeable realisations — the analytical
QPE readout, the explicit Fig. 6 circuit, the Trotterised Fig. 7 evolution —
and this module makes them a first-class, extensible subsystem instead of
string-dispatched branches inside the estimator (see DESIGN.md §5).

Every backend implements :class:`BettiBackend` and registers itself under a
unique name with :func:`register_backend`; :class:`QTDAConfig` validates its
``backend`` field against :func:`available_backends`, and
:class:`repro.core.estimator.QTDABettiEstimator` resolves the configured name
through :func:`get_backend` at estimation time.  Future execution paths (GPU
statevector, tensor networks, real-hardware adapters) plug in the same way
without touching the estimator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Protocol, runtime_checkable

import numpy as np
from scipy import sparse as _sparse

from repro.core.hamiltonian import RescaledHamiltonian, SpectrumCache, build_hamiltonian

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a config<->backends cycle
    from repro.core.config import QTDAConfig


@dataclass
class EstimationProblem:
    """One Betti estimation task: a combinatorial Laplacian plus shared caches.

    Attributes
    ----------
    laplacian:
        The ``|S_k| x |S_k|`` combinatorial Laplacian, dense or
        ``scipy.sparse``.  Backends pull whichever view they need —
        :meth:`dense_hamiltonian` materialises the padded, rescaled
        ``2^q x 2^q`` matrix for circuit execution, while spectral backends
        work from the matrix directly (the ``sparse-exact`` backend never
        densifies above its fallback threshold).
    spectrum_cache:
        Optional shared :class:`SpectrumCache` used by the spectral backends;
        caching never changes results, only cost (DESIGN.md §6).
    """

    laplacian: "np.ndarray | _sparse.spmatrix"
    spectrum_cache: Optional[SpectrumCache] = None

    @property
    def dimension(self) -> int:
        """``|S_k|`` — the unpadded Laplacian dimension."""
        return int(self.laplacian.shape[0])

    @property
    def is_sparse(self) -> bool:
        return _sparse.issparse(self.laplacian)

    def dense_hamiltonian(self, config: "QTDAConfig") -> RescaledHamiltonian:
        """The padded, rescaled dense Hamiltonian (circuit backends need the matrix)."""
        return build_hamiltonian(self.laplacian, delta=config.delta, padding=config.padding)


@dataclass(frozen=True)
class BackendResult:
    """What a backend hands back to the estimator.

    Attributes
    ----------
    distribution:
        Length-``2^t`` probability vector over precision-register readouts;
        the estimator derives ``p(0)`` (exactly or by shot sampling) from it.
    num_system_qubits:
        ``q``, so that ``β̃_k = 2**num_system_qubits * p(0)``.
    lambda_max:
        The Gershgorin bound ``λ̃_max`` used for padding/rescaling
        (spectral-scaling provenance, echoed into :class:`BettiEstimate`).
    """

    distribution: np.ndarray
    num_system_qubits: int
    lambda_max: float


@runtime_checkable
class BettiBackend(Protocol):
    """Protocol every estimator backend implements.

    ``run`` receives the estimation problem (the rescale-ready Laplacian plus
    caches), the full :class:`QTDAConfig` and the estimator's RNG; it returns
    the readout distribution.  Shot sampling is *not* the backend's job — the
    estimator samples the returned distribution so that finite-shot behaviour
    is identical across backends.
    """

    #: Registry name (also the value of ``QTDAConfig.backend``).
    name: str
    #: One-line human description (shown by ``repro-experiments list-backends``).
    description: str
    #: Whether :meth:`QTDABettiEstimator.estimate` should hand this backend a
    #: sparse Laplacian (spectral backends that never densify set this).
    prefers_sparse: bool

    def run(
        self,
        problem: EstimationProblem,
        config: "QTDAConfig",
        rng: np.random.Generator,
    ) -> BackendResult:  # pragma: no cover - protocol signature
        ...


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, BettiBackend] = {}


def register_backend(name: str, backend: BettiBackend) -> None:
    """Register ``backend`` under ``name``.

    Raises
    ------
    ValueError
        If ``name`` is already taken (re-registering is almost always an
        accident — call :func:`unregister_backend` first to replace a
        backend deliberately) or if ``backend`` does not implement the
        :class:`BettiBackend` protocol.
    """
    if not isinstance(name, str) or not name:
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    if name in _REGISTRY:
        raise ValueError(
            f"backend {name!r} is already registered; call unregister_backend({name!r}) "
            "first to replace it"
        )
    if not callable(getattr(backend, "run", None)):
        raise TypeError(f"backend {name!r} does not implement BettiBackend.run")
    for attribute in ("description", "prefers_sparse"):
        if not hasattr(backend, attribute):
            # Consumers read these without getattr fallbacks (the estimator
            # consults prefers_sparse on every estimate), so a late
            # AttributeError there would be far harder to diagnose.
            raise TypeError(f"backend {name!r} is missing the {attribute!r} attribute")
    _REGISTRY[name] = backend


def unregister_backend(name: str) -> BettiBackend:
    """Remove and return the backend registered under ``name``."""
    try:
        return _REGISTRY.pop(name)
    except KeyError:
        raise ValueError(
            f"Unknown backend {name!r}; available backends: {', '.join(available_backends())}"
        ) from None


def available_backends() -> tuple:
    """Sorted names of all registered backends."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> BettiBackend:
    """Resolve a backend by name.

    The error message lists every registered name so a typo in a config file
    or CLI flag is immediately actionable.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"Unknown backend {name!r}; available backends: {', '.join(available_backends())}"
        ) from None
