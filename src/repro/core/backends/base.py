"""Backend protocol, result type and registry for Betti-number estimation.

A *backend* is one realisation of the Section 3 estimator: given a
combinatorial Laplacian it produces the QPE precision-register readout
distribution from which ``β̃_k = 2^q · p(0)`` follows (Eqs. 10–11).  The
paper itself admits several interchangeable realisations — the analytical
QPE readout, the explicit Fig. 6 circuit, the Trotterised Fig. 7 evolution —
and this module makes them a first-class, extensible subsystem instead of
string-dispatched branches inside the estimator (see DESIGN.md §5).

Every backend implements :class:`BettiBackend` and registers itself under a
unique name with :func:`register_backend`; :class:`QTDAConfig` validates its
``backend`` field against :func:`available_backends`, and
:class:`repro.core.estimator.QTDABettiEstimator` resolves the configured name
through :func:`get_backend` at estimation time.  Future execution paths (GPU
statevector, tensor networks, real-hardware adapters) plug in the same way
without touching the estimator.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, Optional, Protocol, Tuple, runtime_checkable

import numpy as np
from scipy import sparse as _sparse

from repro.core.hamiltonian import RescaledHamiltonian, SpectrumCache, build_hamiltonian
from repro.core.operators import (
    DENSE,
    MATRIX_FREE,
    OPERATOR_FORMATS,
    SPARSE,
    LaplacianOperator,
    as_operator,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a config<->backends cycle
    from repro.core.config import QTDAConfig


@dataclass
class EstimationProblem:
    """One Betti estimation task: a Laplacian operator plus shared caches.

    Attributes
    ----------
    laplacian:
        The ``|S_k| x |S_k|`` combinatorial Laplacian — a dense array, a
        ``scipy.sparse`` matrix or a :class:`~repro.core.operators.
        LaplacianOperator` (raw matrices are wrapped on first access, see
        :attr:`operator`).  Backends pull whichever view they need —
        :meth:`dense_hamiltonian` materialises the padded, rescaled
        ``2^q x 2^q`` matrix for circuit execution, spectral backends use
        ``operator.to_sparse()`` and the stochastic backends only ever call
        ``operator.matvec``.
    spectrum_cache:
        Optional shared :class:`SpectrumCache` used by the spectral backends;
        caching never changes results, only cost (DESIGN.md §6).
    """

    laplacian: "np.ndarray | _sparse.spmatrix | LaplacianOperator"
    spectrum_cache: Optional[SpectrumCache] = None
    _operator: Optional[LaplacianOperator] = field(default=None, repr=False, compare=False)

    @property
    def operator(self) -> LaplacianOperator:
        """The Laplacian as a :class:`LaplacianOperator` (wrapped lazily, once)."""
        if self._operator is None:
            self._operator = as_operator(self.laplacian)
        return self._operator

    @property
    def dimension(self) -> int:
        """``|S_k|`` — the unpadded Laplacian dimension."""
        return int(self.laplacian.shape[0])

    @property
    def is_sparse(self) -> bool:
        return self.operator.format == SPARSE

    @property
    def format(self) -> str:
        """Native format of the carried operator (see :data:`OPERATOR_FORMATS`)."""
        return self.operator.format

    def dense_hamiltonian(self, config: "QTDAConfig") -> RescaledHamiltonian:
        """The padded, rescaled dense Hamiltonian (circuit backends need the matrix)."""
        return build_hamiltonian(self.operator, delta=config.delta, padding=config.padding)


@dataclass(frozen=True)
class BackendResult:
    """What a backend hands back to the estimator.

    Attributes
    ----------
    distribution:
        Length-``2^t`` probability vector over precision-register readouts;
        the estimator derives ``p(0)`` (exactly or by shot sampling) from it.
    num_system_qubits:
        ``q``, so that ``β̃_k = 2**num_system_qubits * p(0)``.
    lambda_max:
        The Gershgorin bound ``λ̃_max`` used for padding/rescaling
        (spectral-scaling provenance, echoed into :class:`BettiEstimate`).
    p_zero_std:
        One standard error of the backend's ``p(0)`` estimate, for
        *stochastic* backends (Hutchinson trace estimation); ``None`` for
        deterministic backends.  The estimator scales it by ``2^q`` into
        :attr:`BettiEstimate.betti_std`.
    engine_route:
        For circuit backends, the concrete execution route taken
        (``"ensemble"``, ``"ptm"``, ``"trajectory"``, ``"purified"`` or
        ``"density"`` — see ``QTDAConfig.circuit_engine`` and DESIGN.md
        §11–12, §16); ``None`` for non-circuit backends.  Surfaced through
        :attr:`BettiEstimate.engine_route` into service provenance.
    fused_gates:
        Number of fused blocks actually executed after the fusion pass: the
        post-fusion gate count on the ``ensemble`` route, the fused
        superoperator count on the ``ptm`` route; ``None`` when no fusion
        ran.
    n_trajectories:
        Number of stochastic Kraus-trajectory repetitions run (``trajectory``
        route only); ``None`` otherwise.
    noise_spec:
        JSON-safe dictionary view of the resolved
        :class:`repro.quantum.channels.NoiseSpec` the run was executed under
        (circuit backends with any declarative noise configured); ``None``
        for noiseless runs and non-circuit backends.
    shards, shard_backend:
        How the circuit engine's batch/trajectory axis was sharded
        (``QTDAConfig.shards``/``shard_backend`` as actually executed —
        :mod:`repro.quantum.sharding`); ``None`` when the run used the plain
        single-executor path.
    device:
        Where sharded work ran (``"cpu"`` or ``"cuda:<ordinals>"``, from
        :attr:`repro.quantum.sharding.ShardedExecutor.device_label`);
        ``None`` for unsharded runs.
    """

    distribution: np.ndarray
    num_system_qubits: int
    lambda_max: float
    p_zero_std: "float | None" = None
    engine_route: "str | None" = None
    fused_gates: "int | None" = None
    n_trajectories: "int | None" = None
    noise_spec: "dict | None" = None
    shards: "int | None" = None
    shard_backend: "str | None" = None
    device: "str | None" = None


@runtime_checkable
class BettiBackend(Protocol):
    """Protocol every estimator backend implements.

    ``run`` receives the estimation problem (the rescale-ready Laplacian
    operator plus caches), the full :class:`QTDAConfig` and the estimator's
    RNG; it returns the readout distribution.  Shot sampling is *not* the
    backend's job — the estimator samples the returned distribution so that
    finite-shot behaviour is identical across backends.

    Beyond the members below, a backend must declare the operator formats it
    accepts: either ``supported_formats`` (a preference-ordered tuple drawn
    from :data:`~repro.core.operators.OPERATOR_FORMATS`) or the legacy
    boolean ``prefers_sparse`` — :func:`register_backend` enforces that one
    of the two is present and :func:`backend_formats` normalises them.  An
    optional ``supports_noise`` flag advertises whether the backend honours
    ``QTDAConfig``'s noise fields (default: no).
    """

    #: Registry name (also the value of ``QTDAConfig.backend``).
    name: str
    #: One-line human description (shown by ``repro-experiments list-backends``).
    description: str

    def run(
        self,
        problem: EstimationProblem,
        config: "QTDAConfig",
        rng: np.random.Generator,
    ) -> BackendResult:  # pragma: no cover - protocol signature
        ...


def backend_formats(backend: "BettiBackend") -> Tuple[str, ...]:
    """Operator formats ``backend`` accepts, most-preferred first.

    Backends may declare ``supported_formats`` explicitly (a tuple drawn from
    :data:`~repro.core.operators.OPERATOR_FORMATS`, e.g. ``("matrix-free",
    "sparse", "dense")`` for the stochastic-trace backend).  Backends that
    only declare the legacy ``prefers_sparse`` flag are normalised to
    ``("sparse", "dense")`` or ``("dense",)`` — exactly the formats the
    pre-operator estimator would have handed them.
    """
    declared = getattr(backend, "supported_formats", None)
    if declared:
        formats = tuple(declared)
        unknown = [f for f in formats if f not in OPERATOR_FORMATS]
        if unknown:
            raise ValueError(
                f"backend {getattr(backend, 'name', backend)!r} declares unknown "
                f"operator formats {unknown}; valid formats: {OPERATOR_FORMATS}"
            )
        return formats
    if getattr(backend, "prefers_sparse", False):
        return (SPARSE, DENSE)
    return (DENSE,)


def preferred_format(backend: "BettiBackend") -> str:
    """The single format a producer should build for ``backend``.

    Walks the backend's declared formats in preference order and returns the
    first *buildable* one.  ``"matrix-free"`` is never built by producers (a
    concrete Laplacian is always available as a matrix), so it collapses to
    sparse — a CSR matrix is the cheapest concrete matvec carrier.
    """
    for fmt in backend_formats(backend):
        if fmt == DENSE:
            return DENSE
        if fmt in (SPARSE, MATRIX_FREE):
            return SPARSE
    return DENSE


def backend_supports_noise(backend: "BettiBackend") -> bool:
    """Whether ``backend`` honours ``QTDAConfig.noise_channel``/``noise_model``."""
    return bool(getattr(backend, "supports_noise", False))


def backend_capabilities(backend: "BettiBackend") -> Dict[str, object]:
    """Plain-data capability record of one backend.

    The single source of the per-backend provenance the service API stamps
    into every :class:`repro.core.api.EstimationResult` and of the rows the
    CLI's ``list-backends`` table prints — both stay in sync by construction.
    """
    return {
        "name": backend.name,
        "description": backend.description,
        "formats": list(backend_formats(backend)),
        "preferred_format": preferred_format(backend),
        "supports_noise": backend_supports_noise(backend),
    }


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, BettiBackend] = {}


def register_backend(name: str, backend: BettiBackend) -> None:
    """Register ``backend`` under ``name``.

    Raises
    ------
    ValueError
        If ``name`` is already taken (re-registering is almost always an
        accident — call :func:`unregister_backend` first to replace a
        backend deliberately) or if ``backend`` does not implement the
        :class:`BettiBackend` protocol.
    """
    if not isinstance(name, str) or not name:
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    if name in _REGISTRY:
        raise ValueError(
            f"backend {name!r} is already registered; call unregister_backend({name!r}) "
            "first to replace it"
        )
    if not callable(getattr(backend, "run", None)):
        raise TypeError(f"backend {name!r} does not implement BettiBackend.run")
    if not hasattr(backend, "description"):
        raise TypeError(f"backend {name!r} is missing the 'description' attribute")
    if not hasattr(backend, "prefers_sparse") and not getattr(backend, "supported_formats", None):
        # Producers negotiate formats on every estimate (backend_formats /
        # preferred_format); a backend declaring neither the new
        # supported_formats tuple nor the legacy prefers_sparse flag would
        # fail far from here, mid-estimate.
        raise TypeError(
            f"backend {name!r} must declare supported_formats (or the legacy "
            "prefers_sparse flag)"
        )
    backend_formats(backend)  # validates any declared format names eagerly
    _REGISTRY[name] = backend


def unregister_backend(name: str) -> BettiBackend:
    """Remove and return the backend registered under ``name``."""
    try:
        return _REGISTRY.pop(name)
    except KeyError:
        raise ValueError(
            f"Unknown backend {name!r}; available backends: {', '.join(available_backends())}"
        ) from None


@contextmanager
def temporary_backend(name: str, backend: BettiBackend) -> Iterator[BettiBackend]:
    """Register ``backend`` under ``name`` for the duration of a ``with`` block.

    The backend is unregistered on exit even when the body raises, so test
    suites (and exploratory scripts) can never leak registry state into later
    code.  The registration is only removed if it still points at *this*
    backend — a body that legitimately replaced it keeps its replacement.
    """
    register_backend(name, backend)
    try:
        yield backend
    finally:
        if _REGISTRY.get(name) is backend:
            unregister_backend(name)


def available_backends() -> tuple:
    """Sorted names of all registered backends."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> BettiBackend:
    """Resolve a backend by name.

    The error message lists every registered name so a typo in a config file
    or CLI flag is immediately actionable.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"Unknown backend {name!r}; available backends: {', '.join(available_backends())}"
        ) from None
