"""The ``stochastic-trace`` backend — Hutchinson/SLQ estimation via matvecs only.

The readout distribution of ideal QPE on the maximally mixed state is a
*trace*: writing ``K_m(λ)`` for the Fejér-kernel probability of readout ``m``
given the phase of eigenvalue ``λ`` (Eq. 10),

    p(m) = (1 / 2^q) [ tr K_m(Δ_k) + (2^q - |S_k|) · K_m(λ_pad) ],

so ``p(0)`` — and with it ``β̃_k = 2^q · p(0)`` — needs only ``tr K_0(Δ_k)``,
never a factorisation or an eigendecomposition.  This backend estimates that
trace with stochastic Lanczos quadrature (SLQ):

* draw Rademacher probes ``z`` (``E[z zᵀ] = I``, so ``E[zᵀ f(Δ) z] = tr f(Δ)``
  — Hutchinson's estimator);
* for each probe run ``m`` steps of Lanczos with the operator's ``matvec``
  (full reorthogonalisation; the only primitive used, so matrix-free
  operators work unchanged);
* the tridiagonal eigenpairs ``(θ_i, τ_i)`` form a Gauss quadrature of the
  probe's spectral measure: ``zᵀ f(Δ) z ≈ |S_k| Σ_i τ_i f(θ_i)``;
* Ritz values inside ``zero_eigenvalue_atol`` of 0 are snapped to exactly 0
  (Lanczos converges fastest on the extremal kernel cluster), so the kernel
  reads as phase 0 just like the exact backends.

Averaging the per-probe distributions gives the full readout distribution;
the empirical standard error of the per-probe ``p(0)`` contributions is
reported through :attr:`BackendResult.p_zero_std` and surfaces as
``BettiEstimate.betti_std`` — the error bar the ROADMAP item asks for.  Cost
per estimate is ``O(probes · steps · nnz)`` matvec work, which scales past
``sparse-exact``'s shift-invert *factorisation* for very large complexes.

**Variance reduction** (``QTDAConfig.trace_deflation_rank > 0``): Hutch++-
style deflated probing.  The kernel cluster dominates both the trace
(``K_0(0) = 1`` is the largest kernel value) and the Hutchinson variance, so
a rank-``r`` near-kernel subspace is first resolved with a single Lanczos
run; its Ritz values contribute *exactly* (zero variance), and the
Rademacher probes are projected onto the orthogonal complement before SLQ,
estimating only the deflated remainder ``(I - QQᵀ) Δ (I - QQᵀ)``.  The
deflation run's matvecs are paid for by shortening the per-probe Lanczos
recurrences, so the total operator-matvec budget matches the plain
estimator's ``probes · steps`` — same cost, smaller ``betti_std``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.linalg import eigh_tridiagonal

from repro.core.backends.base import BackendResult, EstimationProblem, register_backend
from repro.quantum.qpe import qpe_probability_kernel


class StochasticTraceBackend:
    """Hutchinson/SLQ readout-distribution estimate from matvecs only.

    Parameters
    ----------
    num_probes:
        Number of Rademacher probe vectors.  The reported error bar shrinks
        as ``1/sqrt(num_probes)``.
    lanczos_steps:
        Lanczos steps per probe (capped at ``|S_k|``, where the quadrature
        becomes exact for that probe).
    breakdown_tol:
        Relative off-diagonal threshold below which the Krylov space is
        treated as invariant and the recurrence stops early (the quadrature
        is then exact on the subspace the probe actually explores).
    """

    name = "stochastic-trace"
    description = "Hutchinson/SLQ trace estimate of the QPE readout (matvec-only, reports error bars)"
    prefers_sparse = True
    supported_formats = ("matrix-free", "sparse", "dense")
    supports_noise = False

    def __init__(
        self,
        num_probes: int = 32,
        lanczos_steps: int = 64,
        breakdown_tol: float = 1e-12,
    ):
        if num_probes < 1:
            raise ValueError("num_probes must be positive")
        if lanczos_steps < 1:
            raise ValueError("lanczos_steps must be positive")
        if breakdown_tol <= 0:
            raise ValueError("breakdown_tol must be positive")
        self.num_probes = int(num_probes)
        self.lanczos_steps = int(lanczos_steps)
        self.breakdown_tol = float(breakdown_tol)

    def run(self, problem: EstimationProblem, config, rng: np.random.Generator) -> BackendResult:
        operator = problem.operator
        n = operator.dim
        lam = operator.gershgorin_bound()
        num_qubits = max(1, int(np.ceil(np.log2(n))))
        scale = config.delta / lam if lam > 0 else 1.0
        t = config.precision_qubits
        num_outcomes = 2**t
        pad_count = 2**num_qubits - n
        atol = config.zero_eigenvalue_atol
        steps = min(self.lanczos_steps, n)

        # Hutch++-style deflation (QTDAConfig.trace_deflation_rank): resolve a
        # near-kernel subspace exactly first, probe only the deflated rest.
        rank = int(getattr(config, "trace_deflation_rank", 0) or 0)
        rank = min(rank, n - 1) if n > 1 else 0
        exact_part = np.zeros(num_outcomes)
        matvec = operator.matvec
        probe_steps = steps
        deflation_q: "np.ndarray | None" = None
        if rank > 0:
            budget = self.num_probes * steps
            deflation_steps = min(n, max(2 * rank, rank + 8))
            start = rng.integers(0, 2, size=n).astype(float) * 2.0 - 1.0
            alphas, betas, count, basis = self._lanczos(operator.matvec, start, deflation_steps, lam)
            ritz_values, vectors = eigh_tridiagonal(alphas[:count], betas[: count - 1])
            order = np.argsort(ritz_values)[: min(rank, count)]
            # Ritz vectors of the smallest Ritz values: the (near-)kernel
            # cluster Lanczos resolves first.  Handled exactly below; the
            # probes see only the orthogonal complement.
            deflation_q = basis[:count].T @ vectors[:, order]
            exact_part = qpe_probability_kernel(
                self._phases(ritz_values[order], scale, atol), t
            ).sum(axis=0)
            # Equal matvec budget: the deflation run's steps come out of the
            # per-probe Lanczos depth.
            probe_steps = min(max(1, (budget - deflation_steps) // self.num_probes), n)

            def matvec(v, _mv=operator.matvec, _q=deflation_q):
                v = v - _q @ (_q.T @ v)
                w = _mv(v)
                return w - _q @ (_q.T @ w)

        # Per-probe readout contributions: d_p = ‖z‖² Σ_i τ_i K(θ_i)
        # (‖z‖² = |S_k| exactly for undeflated Rademacher probes).
        contributions = np.empty((self.num_probes, num_outcomes))
        for p in range(self.num_probes):
            probe = rng.integers(0, 2, size=n).astype(float) * 2.0 - 1.0
            if deflation_q is not None:
                probe = probe - deflation_q @ (deflation_q.T @ probe)
            norm_sq = float(probe @ probe)
            if norm_sq <= 0.0:
                contributions[p] = 0.0
                continue
            nodes, weights = self._lanczos_quadrature(matvec, probe, probe_steps, lam)
            contributions[p] = norm_sq * weights @ qpe_probability_kernel(
                self._phases(nodes, scale, atol), t
            )

        distribution = exact_part + contributions.mean(axis=0)
        if pad_count:
            pad_eigenvalue = lam / 2.0 if config.padding == "identity" else 0.0
            distribution = distribution + pad_count * qpe_probability_kernel(
                self._phases(np.array([pad_eigenvalue]), scale, atol), t
            )[0]
        distribution = distribution / 2.0**num_qubits

        if self.num_probes > 1:
            p_zero_std = float(
                contributions[:, 0].std(ddof=1)
                / np.sqrt(self.num_probes)
                / 2.0**num_qubits
            )
        else:
            # One probe has no empirical spread: the uncertainty is unknown,
            # not zero — claiming σ = 0 would present a noisy single-sample
            # estimate as exact to any "within k·σ" consumer.
            p_zero_std = None
        return BackendResult(
            distribution=distribution,
            num_system_qubits=num_qubits,
            lambda_max=lam,
            p_zero_std=p_zero_std,
        )

    # -- SLQ machinery ----------------------------------------------------------
    @staticmethod
    def _phases(eigenvalues: np.ndarray, scale: float, atol: float) -> np.ndarray:
        """Map Laplacian eigenvalues to QPE phases, kernel snapped to exactly 0.

        Mirrors :meth:`repro.core.hamiltonian.PaddedSpectrum.eigenphases` so
        the stochastic route is interchangeable with the analytic one.
        """
        eigenvalues = np.where(np.abs(eigenvalues) <= atol, 0.0, eigenvalues)
        eigenvalues = np.clip(eigenvalues, 0.0, None)
        return (scale * eigenvalues / (2.0 * np.pi)) % 1.0

    def _lanczos(
        self, matvec, start: np.ndarray, steps: int, lam: float
    ) -> Tuple[np.ndarray, np.ndarray, int, np.ndarray]:
        """Symmetric Lanczos recurrence with full reorthogonalisation.

        Returns ``(alphas, betas, count, basis)``: the tridiagonal
        coefficients, the number of steps actually taken (the recurrence
        stops early on an invariant subspace — the quadrature is then exact
        on the subspace the start vector actually explores) and the
        orthonormal Krylov basis (rows; needed to lift Ritz vectors back to
        the ambient space for deflation).
        """
        n = start.size
        q = start / np.linalg.norm(start)
        basis = np.empty((steps, n))
        alphas = np.empty(steps)
        betas = np.empty(max(steps - 1, 0))
        q_prev = np.zeros(n)
        beta_prev = 0.0
        count = 0
        for j in range(steps):
            basis[j] = q
            w = matvec(q)
            alphas[j] = float(q @ w)
            count = j + 1
            if j == steps - 1:
                break
            w = w - alphas[j] * q - beta_prev * q_prev
            w -= basis[:count].T @ (basis[:count] @ w)
            w -= basis[:count].T @ (basis[:count] @ w)
            beta = float(np.linalg.norm(w))
            if beta <= self.breakdown_tol * max(1.0, lam):
                break
            betas[j] = beta
            q_prev, q, beta_prev = q, w / beta, beta
        return alphas, betas, count, basis

    def _lanczos_quadrature(
        self, matvec, probe: np.ndarray, steps: int, lam: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Gauss-quadrature nodes/weights of one probe's spectral measure.

        Runs the Lanczos recurrence (full reorthogonalisation, twice —
        numerically equivalent to exact arithmetic at these sizes) and
        diagonalises the tridiagonal matrix; the squared first components
        of its eigenvectors are the quadrature weights.
        """
        alphas, betas, count, _ = self._lanczos(matvec, probe, steps, lam)
        nodes, vectors = eigh_tridiagonal(alphas[:count], betas[: count - 1])
        weights = vectors[0, :] ** 2
        return nodes, weights


register_backend(StochasticTraceBackend.name, StochasticTraceBackend())
