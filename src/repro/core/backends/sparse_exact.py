"""The ``sparse-exact`` backend — matrix-free spectral path for large complexes.

The ``exact`` backend densifies the ``|S_k| x |S_k|`` Laplacian and runs a
full ``eigvalsh``, which is cubic in ``|S_k|``; for Rips complexes with
thousands of k-simplices that dominates everything else.  This backend keeps
the Laplacian sparse and computes only the part of the spectrum that matters
for the Betti estimate:

* ``λ̃_max`` is the Gershgorin bound — row sums of a sparse matrix, never a
  diagonalisation (exactly as the dense path, Eq. 7);
* the *low* end of the spectrum — the kernel (the Betti number itself) and
  the near-zero eigenvalues whose QPE leakage dominates the estimation error
  — is computed exactly with shift-invert Lanczos
  (:func:`scipy.sparse.linalg.eigsh` at a small negative shift, so the
  factorised matrix is positive definite even though the Laplacian is
  singular).  If the whole computed window is still kernel, the window is
  doubled until a non-zero eigenvalue appears, so the kernel is never
  truncated;
* the remaining bulk eigenvalues sit far from phase 0 where the Fejér kernel
  is small; they are represented by a uniform surrogate spectrum whose mean
  and variance match the *exact* residual moments ``tr Δ_k - Σ computed`` and
  ``tr Δ_k² - Σ computed²`` (both are cheap sparse reductions — the trace and
  the squared Frobenius norm need no diagonalisation).  Spreading the bulk
  uniformly rather than concentrating it at the mean integrates over the
  Fejér kernel's oscillations, which keeps the surrogate's readout
  distribution within a few hundredths of the full-spectrum one.

Everything then feeds the existing analytic padded-spectrum machinery
(:class:`repro.core.hamiltonian.PaddedSpectrum`).  Below
``dense_threshold`` (or for dense input) the backend delegates to the dense
path, so results on paper-scale complexes are **bit-identical** to the
``exact`` backend — the benchmark gate in
``benchmarks/test_bench_sparse_backend.py`` pins both that equivalence and
the ≥3× speedup on a ~1000-simplex complex.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import linalg as _sparse_linalg

from repro.core.backends.base import BackendResult, EstimationProblem, register_backend
from repro.core.hamiltonian import PaddedSpectrum, padded_spectrum
from repro.quantum.qpe import qpe_outcome_distribution


class SparseExactBackend:
    """Partial-spectrum analytic backend for sparse Laplacians.

    Parameters
    ----------
    dense_threshold:
        Below this dimension (or for dense input) the dense
        :func:`padded_spectrum` path is used verbatim — bit-identical to the
        ``exact`` backend and faster at small sizes, where a sparse
        factorisation has nothing to amortise.
    num_eigenvalues:
        Initial size ``m`` of the exactly-computed low-spectrum window.
        Automatically doubled while the window is entirely kernel.
    shift:
        Shift ``σ < 0`` for the shift-invert factorisation; ``Δ_k - σI`` is
        positive definite for any negative shift because the Laplacian is
        positive semi-definite.
    lanczos_tol:
        Relative accuracy requested from ARPACK.  ``1e-10`` is far below the
        ``zero_eigenvalue_atol`` used to identify the kernel and markedly
        cheaper than machine precision on clustered spectra.
    """

    name = "sparse-exact"
    description = "shift-invert partial spectrum on the sparse |S_k| Laplacian (dense fallback below threshold)"
    prefers_sparse = True
    supported_formats = ("sparse", "dense")
    supports_noise = False

    def __init__(
        self,
        dense_threshold: int = 256,
        num_eigenvalues: int = 24,
        shift: float = -1e-3,
        lanczos_tol: float = 1e-10,
    ):
        if dense_threshold < 1:
            raise ValueError("dense_threshold must be positive")
        if num_eigenvalues < 1:
            raise ValueError("num_eigenvalues must be positive")
        if shift >= 0:
            raise ValueError("shift must be negative (the Laplacian itself is singular)")
        self.dense_threshold = int(dense_threshold)
        self.num_eigenvalues = int(num_eigenvalues)
        self.shift = float(shift)
        self.lanczos_tol = float(lanczos_tol)

    def run(self, problem: EstimationProblem, config, rng: np.random.Generator) -> BackendResult:
        spectrum = self._spectrum(problem, config)
        distribution = qpe_outcome_distribution(spectrum.eigenphases(), config.precision_qubits)
        return BackendResult(
            distribution=distribution,
            num_system_qubits=spectrum.num_qubits,
            lambda_max=spectrum.lambda_max,
        )

    # -- spectral machinery ----------------------------------------------------
    def _spectrum(self, problem: EstimationProblem, config) -> PaddedSpectrum:
        operator = problem.operator
        n = operator.dim
        if operator.format != "sparse" or n <= self.dense_threshold:
            return padded_spectrum(
                operator, delta=config.delta, padding=config.padding, cache=problem.spectrum_cache
            )
        partial = self._partial_eigenvalues(operator, config.zero_eigenvalue_atol)
        if partial is None:
            # Lanczos did not converge, or the window grew to the full matrix:
            # fall back to the dense path rather than return a worse answer.
            return padded_spectrum(
                operator, delta=config.delta, padding=config.padding, cache=problem.spectrum_cache
            )
        eigenvalues, lam = partial
        num_qubits = max(1, int(np.ceil(np.log2(n))))
        scale = config.delta / lam if lam > 0 else 1.0
        return PaddedSpectrum(
            eigenvalues=eigenvalues,
            lambda_max=lam,
            delta=config.delta,
            scale=scale,
            padding=config.padding,
            original_dimension=n,
            num_qubits=num_qubits,
        )

    def _partial_eigenvalues(self, operator, atol: float):
        """``(surrogate spectrum, λ̃_max)`` of the unpadded sparse Laplacian.

        ``operator`` is the problem's sparse :class:`LaplacianOperator`; the
        Gershgorin bound and the moment reductions come from it (one shared
        implementation, DESIGN.md §9).  Returns ``None`` when the sparse
        route cannot answer reliably (the caller then takes the dense
        fallback).
        """
        lap = operator.to_sparse()
        n = lap.shape[0]
        asymmetry = abs(lap - lap.T)
        if asymmetry.nnz and asymmetry.max() > 1e-10:
            raise ValueError("laplacian must be symmetric")
        lam = operator.gershgorin_bound()

        m = min(self.num_eigenvalues, n - 2)
        while True:
            try:
                computed = _sparse_linalg.eigsh(
                    lap,
                    k=m,
                    sigma=self.shift,
                    which="LM",
                    return_eigenvectors=False,
                    tol=self.lanczos_tol,
                )
            except (_sparse_linalg.ArpackError, RuntimeError, ValueError):
                return None
            computed = np.sort(np.asarray(computed, dtype=float))
            if float(computed[-1]) > atol:
                break
            if m >= n - 2:
                # The whole window is kernel — the complex is almost entirely
                # harmonic and the partial path has no bulk left to summarise.
                return None
            m = min(n - 2, 2 * m)
        # Snap the computed kernel to exactly zero (Lanczos residuals are
        # larger than the dense path's 1e-15 noise) and clip tiny negatives.
        computed = np.where(np.abs(computed) <= atol, 0.0, np.clip(computed, 0.0, None))
        # Uniform surrogate for the bulk, matching the exact residual moments
        # tr Δ and tr Δ² — see the module docstring.
        rest = n - m
        trace1 = operator.trace()
        trace2 = operator.frobenius_norm_squared()  # ‖Δ‖_F² = tr Δ² (symmetric)
        mean = (trace1 - float(computed.sum())) / rest
        variance = max((trace2 - float(np.square(computed).sum())) / rest - mean**2, 0.0)
        half_width = float(np.sqrt(3.0 * variance))  # uniform dist: var = w²/3
        lo, hi = mean - half_width, mean + half_width
        # Keep the surrogate inside [top of the computed window, λ̃_max],
        # shifting to preserve the mean where the clip allows it.
        floor = float(computed[-1])
        shift = 0.0
        if lo < floor:
            shift = floor - lo
        elif hi > lam:
            shift = lam - hi
        lo = float(np.clip(lo + shift, floor, lam))
        hi = float(np.clip(hi + shift, floor, lam))
        bulk = np.linspace(lo, hi, rest) if rest > 1 else np.array([(lo + hi) / 2.0])
        return np.concatenate([computed, bulk]), lam


register_backend(SparseExactBackend.name, SparseExactBackend())
