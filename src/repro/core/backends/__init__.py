"""Pluggable execution backends for the QPE Betti-number estimator.

This subpackage is the architectural seam between *what* the Section 3
algorithm computes (``β̃_k = 2^q · p(0)``) and *how* the readout distribution
is obtained.  Importing it registers the built-in backends:

========================  ====================================================
name                      realisation
========================  ====================================================
``exact``                 analytical QPE readout from the padded spectrum
``sparse-exact``          shift-invert partial spectrum on the sparse
                          Laplacian (dense fallback below a size threshold)
``stochastic-trace``      Hutchinson/SLQ trace estimate via matvecs only
                          (matrix-free, reports error bars)
``statevector``           explicit Fig. 6 circuit, exact controlled powers
``trotter``               Fig. 6 with Trotterised evolution (Fig. 7)
``noisy-density``         Fig. 6 on the density-matrix simulator with a
                          per-gate noise channel
========================  ====================================================

Backends receive :class:`EstimationProblem`\\ s carrying a
:class:`repro.core.operators.LaplacianOperator` and declare which operator
formats they accept through ``supported_formats`` (normalised by
:func:`backend_formats`; producers consult :func:`preferred_format` to decide
what to build).  Third-party backends implement :class:`BettiBackend` and
call :func:`register_backend` (or :func:`temporary_backend` for scoped
registration); every consumer (config validation, estimator, pipeline, batch
engine, CLI, experiment drivers) resolves names through this registry, so a
registered backend is immediately usable everywhere.  See DESIGN.md §5/§9.
"""

from repro.core.backends.base import (
    BackendResult,
    BettiBackend,
    EstimationProblem,
    available_backends,
    backend_capabilities,
    backend_formats,
    backend_supports_noise,
    get_backend,
    preferred_format,
    register_backend,
    temporary_backend,
    unregister_backend,
)

# Importing the modules registers the built-in backends.
from repro.core.backends.exact import ExactBackend
from repro.core.backends.sparse_exact import SparseExactBackend
from repro.core.backends.stochastic_trace import StochasticTraceBackend
from repro.core.backends.statevector import StatevectorBackend
from repro.core.backends.trotter import TrotterBackend
from repro.core.backends.noisy_density import NoisyDensityBackend

__all__ = [
    "BackendResult",
    "BettiBackend",
    "EstimationProblem",
    "available_backends",
    "backend_capabilities",
    "backend_formats",
    "backend_supports_noise",
    "get_backend",
    "preferred_format",
    "register_backend",
    "temporary_backend",
    "unregister_backend",
    "ExactBackend",
    "SparseExactBackend",
    "StochasticTraceBackend",
    "StatevectorBackend",
    "TrotterBackend",
    "NoisyDensityBackend",
]
