"""The ``trotter`` backend — Fig. 6 with ``U`` synthesised from Pauli terms.

Identical to the ``statevector`` backend except that ``U = exp(iH)`` is
realised as a product formula over the Pauli decomposition of ``H`` (the
Fig. 7 construction), so the estimate includes genuine product-formula error
— the implementation perspective a compiler would emit for hardware.
"""

from __future__ import annotations

import numpy as np

from repro.core.backends.base import BackendResult, EstimationProblem, register_backend
from repro.core.backends.statevector import circuit_backend_result


class TrotterBackend:
    """Fig. 6 circuit with Trotterised time evolution (Fig. 7)."""

    name = "trotter"
    description = "Fig. 6 circuit with U synthesised from the Pauli decomposition (Fig. 7 product formula)"
    prefers_sparse = False
    supported_formats = ("dense",)
    supports_noise = True

    def run(self, problem: EstimationProblem, config, rng: np.random.Generator) -> BackendResult:
        return circuit_backend_result(
            problem, config, "trotter", config.resolved_noise_model(), rng=rng
        )


register_backend(TrotterBackend.name, TrotterBackend())
