"""The ``exact`` backend — analytical QPE readout from the padded spectrum.

Fastest realisation of the estimator, used for all paper-scale sweeps: the
padded, rescaled Hamiltonian's eigenphases follow analytically from the
eigendecomposition of the small ``|S_k| x |S_k|`` Laplacian (DESIGN.md §6),
and the QPE readout distribution is the Fejér-kernel mixture of those phases
(:func:`repro.quantum.qpe.qpe_outcome_distribution`).  With finite ``shots``
the estimator samples the returned distribution, reproducing shot noise
exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core.backends.base import BackendResult, EstimationProblem, register_backend
from repro.core.hamiltonian import padded_spectrum
from repro.quantum.qpe import qpe_outcome_distribution


class ExactBackend:
    """Analytical QPE outcome distribution from the Hamiltonian's eigenphases."""

    name = "exact"
    description = "analytical QPE readout from the padded spectrum (dense |S_k| eigendecomposition)"
    prefers_sparse = False
    supported_formats = ("dense", "sparse", "matrix-free")
    supports_noise = False

    def run(self, problem: EstimationProblem, config, rng: np.random.Generator) -> BackendResult:
        spectrum = padded_spectrum(
            problem.operator,
            delta=config.delta,
            padding=config.padding,
            cache=problem.spectrum_cache,
        )
        distribution = qpe_outcome_distribution(spectrum.eigenphases(), config.precision_qubits)
        return BackendResult(
            distribution=distribution,
            num_system_qubits=spectrum.num_qubits,
            lambda_max=spectrum.lambda_max,
        )


register_backend(ExactBackend.name, ExactBackend())
