"""The ``statevector`` backend — the explicit Fig. 6 circuit.

Builds the full QTDA circuit with exact controlled powers of ``U = exp(iH)``
and executes it over one of three routes (``QTDAConfig.circuit_engine``,
DESIGN.md §11):

* ``ensemble`` (the default for noise-free runs) — the maximally mixed input
  is simulated by evolving the ``2^q`` system basis states as *one batched
  ``(2^(t+q), B)`` statevector array* on the execution engine
  (:mod:`repro.quantum.engine`): every gate is a single ``tensordot`` across
  the whole batch, adjacent gates are fused, the batch is chunked to a
  memory budget, and the readout is the batch-averaged marginal.
  Mathematically identical to evolving ``|0><0| ⊗ I/2^q`` but
  ``O(2^(t+q) · 2^q)`` flops per gate on a flat array instead of a squared
  density matrix, with no purification qubits.
* ``purified`` — the Fig. 2 construction: auxiliary qubits and Bell pairs,
  statevector simulation on ``t + 2q`` qubits (legacy route,
  bit-identity-pinned).
* ``density`` — density-matrix evolution of ``|0><0| ⊗ I/2^q`` on ``t + q``
  qubits, gate by gate (legacy route, bit-identity-pinned; required — and
  forced — whenever a noise model is in effect).

This module also hosts the circuit-execution plumbing shared by the
``trotter`` and ``noisy-density`` backends, which differ only in how ``U`` is
synthesised and in how noise is injected.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.backends.base import BackendResult, EstimationProblem, register_backend
from repro.core.qtda_circuit import QTDACircuitSpec, qtda_circuit
from repro.quantum.density_matrix import DensityMatrix, DensityMatrixSimulator
from repro.quantum.engine import EnsembleExecutor
from repro.quantum.noise import NoiseModel
from repro.quantum.statevector import StatevectorSimulator

#: Concrete circuit-execution routes (``"auto"`` resolves to one of these).
CIRCUIT_ROUTES = ("ensemble", "purified", "density")


def resolve_circuit_route(config, noise_model: Optional[NoiseModel]) -> str:
    """Resolve ``config.circuit_engine`` to a concrete route.

    A noise model forces the ``density`` route (Kraus channels need a mixed
    state the pure-state routes cannot carry); an *explicit* pure-state
    engine choice combined with noise raises instead of silently dropping
    either.  ``"auto"`` picks ``ensemble`` for noise-free runs.
    """
    engine = getattr(config, "circuit_engine", "auto")
    if engine not in ("auto",) + CIRCUIT_ROUTES:
        raise ValueError(
            f"circuit_engine must be one of {('auto',) + CIRCUIT_ROUTES}, got {engine!r}"
        )
    if noise_model is not None:
        if engine in ("ensemble", "purified"):
            raise ValueError(
                f"circuit_engine={engine!r} cannot simulate noise channels; "
                "use 'density' (or 'auto')"
            )
        return "density"
    if engine == "auto":
        return "ensemble"
    return engine


def mixed_initial_state(spec: QTDACircuitSpec) -> DensityMatrix:
    """``|0><0|`` on precision (and auxiliary) registers, ``I/2^q`` on the system."""
    t, q, aux = spec.precision_qubits, spec.system_qubits, spec.auxiliary_qubits
    rho_precision = DensityMatrix.zero_state(t).matrix
    rho_system = DensityMatrix.maximally_mixed(q).matrix
    rho = np.kron(rho_precision, rho_system)
    if aux:
        rho = np.kron(rho, DensityMatrix.zero_state(aux).matrix)
    return DensityMatrix(rho)


def _ensemble_route_result(problem: EstimationProblem, config, synthesis: str) -> BackendResult:
    """Batched-statevector execution of the mixed-state circuit.

    The circuit is built without purification on ``t + q`` qubits; the
    ``2^q`` system basis states form the ensemble (full-register basis index
    ``b`` — the precision register reads ``|0...0>``, so the indices coincide).
    The exact synthesis uses spectral controlled powers (one ``eigh`` of
    ``H``, phases raised to ``2^j``); the engine fuses adjacent small gates
    (cached per circuit fingerprint) and chunks the batch to its memory
    budget.
    """
    hamiltonian = problem.dense_hamiltonian(config)
    circuit, spec = qtda_circuit(
        hamiltonian,
        precision_qubits=config.precision_qubits,
        use_purification=False,
        synthesis=synthesis,
        trotter_steps=config.trotter_steps,
        trotter_order=config.trotter_order,
        power_synthesis="spectral" if synthesis == "exact" else "chain",
    )
    executor = EnsembleExecutor()
    plan = executor.gate_plan(circuit)
    distribution = executor.basis_ensemble_distribution(
        circuit,
        qubits=list(spec.precision_register),
        basis_states=range(2**spec.system_qubits),
        plan=plan,
    )
    return BackendResult(
        distribution=distribution,
        num_system_qubits=hamiltonian.num_qubits,
        lambda_max=hamiltonian.padded.lambda_max,
        engine_route="ensemble",
        fused_gates=len(plan),
    )


def circuit_backend_result(
    problem: EstimationProblem,
    config,
    synthesis: str,
    noise_model: Optional[NoiseModel],
    use_purification: Optional[bool] = None,
) -> BackendResult:
    """Build and execute the Fig. 6 circuit, returning the readout distribution.

    The route comes from ``config.circuit_engine`` via
    :func:`resolve_circuit_route`; the legacy ``use_purification`` keyword,
    when passed explicitly, forces the corresponding legacy route (purified
    statevector, or the density-matrix evolution — noise always implies the
    latter), bypassing the ensemble engine.
    """
    if use_purification is None:
        route = resolve_circuit_route(config, noise_model)
    else:
        route = "purified" if (use_purification and noise_model is None) else "density"
    if route == "ensemble":
        return _ensemble_route_result(problem, config, synthesis)

    hamiltonian = problem.dense_hamiltonian(config)
    circuit, spec = qtda_circuit(
        hamiltonian,
        precision_qubits=config.precision_qubits,
        use_purification=route == "purified",
        synthesis=synthesis,
        trotter_steps=config.trotter_steps,
        trotter_order=config.trotter_order,
    )
    precision_register = list(spec.precision_register)
    if route == "density":
        sim = DensityMatrixSimulator(noise_model=noise_model)
        final = sim.run(circuit, initial_state=mixed_initial_state(spec))
        distribution = final.marginal_probabilities(precision_register)
    else:
        distribution = StatevectorSimulator().probabilities(circuit, qubits=precision_register)
    return BackendResult(
        distribution=distribution,
        num_system_qubits=hamiltonian.num_qubits,
        lambda_max=hamiltonian.padded.lambda_max,
        engine_route=route,
    )


class StatevectorBackend:
    """Explicit Fig. 6 circuit with exact controlled powers of ``U``."""

    name = "statevector"
    description = "explicit Fig. 6 circuit with exact controlled powers of U (ensemble, purified or density route)"
    prefers_sparse = False
    supported_formats = ("dense",)
    supports_noise = True

    def run(self, problem: EstimationProblem, config, rng: np.random.Generator) -> BackendResult:
        return circuit_backend_result(problem, config, "exact", config.resolved_noise_model())


register_backend(StatevectorBackend.name, StatevectorBackend())
