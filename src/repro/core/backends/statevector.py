"""The ``statevector`` backend — the explicit Fig. 6 circuit.

Builds the full QTDA circuit with exact controlled powers of ``U = exp(iH)``
and executes it:

* with purification (Fig. 2) the maximally mixed input is prepared with
  auxiliary qubits and the statevector simulator runs on ``t + 2q`` qubits;
* without purification (or whenever a noise model is in effect) the
  density-matrix simulator evolves ``|0><0| ⊗ I/2^q`` on ``t + q`` qubits.

This module also hosts the circuit-execution plumbing shared by the
``trotter`` and ``noisy-density`` backends, which differ only in how ``U`` is
synthesised and in how noise is injected.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.backends.base import BackendResult, EstimationProblem, register_backend
from repro.core.qtda_circuit import QTDACircuitSpec, qtda_circuit
from repro.quantum.density_matrix import DensityMatrix, DensityMatrixSimulator
from repro.quantum.noise import NoiseModel
from repro.quantum.statevector import StatevectorSimulator


def mixed_initial_state(spec: QTDACircuitSpec) -> DensityMatrix:
    """``|0><0|`` on precision (and auxiliary) registers, ``I/2^q`` on the system."""
    t, q, aux = spec.precision_qubits, spec.system_qubits, spec.auxiliary_qubits
    rho_precision = DensityMatrix.zero_state(t).matrix
    rho_system = DensityMatrix.maximally_mixed(q).matrix
    rho = np.kron(rho_precision, rho_system)
    if aux:
        rho = np.kron(rho, DensityMatrix.zero_state(aux).matrix)
    return DensityMatrix(rho)


def circuit_backend_result(
    problem: EstimationProblem,
    config,
    synthesis: str,
    noise_model: Optional[NoiseModel],
    use_purification: Optional[bool] = None,
) -> BackendResult:
    """Build and execute the Fig. 6 circuit, returning the readout distribution.

    ``use_purification`` defaults to the config's setting, forced off when a
    noise model is in effect (noise requires the density-matrix route).
    """
    hamiltonian = problem.dense_hamiltonian(config)
    if use_purification is None:
        use_purification = config.use_purification and noise_model is None
    circuit, spec = qtda_circuit(
        hamiltonian,
        precision_qubits=config.precision_qubits,
        use_purification=use_purification,
        synthesis=synthesis,
        trotter_steps=config.trotter_steps,
        trotter_order=config.trotter_order,
    )
    precision_register = list(spec.precision_register)
    if noise_model is not None or spec.auxiliary_qubits == 0:
        # Density-matrix route: start the system register in I/2^q directly.
        sim = DensityMatrixSimulator(noise_model=noise_model)
        final = sim.run(circuit, initial_state=mixed_initial_state(spec))
        distribution = final.marginal_probabilities(precision_register)
    else:
        distribution = StatevectorSimulator().probabilities(circuit, qubits=precision_register)
    return BackendResult(
        distribution=distribution,
        num_system_qubits=hamiltonian.num_qubits,
        lambda_max=hamiltonian.padded.lambda_max,
    )


class StatevectorBackend:
    """Explicit Fig. 6 circuit with exact controlled powers of ``U``."""

    name = "statevector"
    description = "explicit Fig. 6 circuit with exact controlled powers of U (purified or density-matrix)"
    prefers_sparse = False
    supported_formats = ("dense",)
    supports_noise = True

    def run(self, problem: EstimationProblem, config, rng: np.random.Generator) -> BackendResult:
        return circuit_backend_result(problem, config, "exact", config.resolved_noise_model())


register_backend(StatevectorBackend.name, StatevectorBackend())
