"""The ``statevector`` backend — the explicit Fig. 6 circuit.

Builds the full QTDA circuit with exact controlled powers of ``U = exp(iH)``
and executes it over one of three routes (``QTDAConfig.circuit_engine``,
DESIGN.md §11):

* ``ensemble`` (the default for noise-free runs) — the maximally mixed input
  is simulated by evolving the ``2^q`` system basis states as *one batched
  ``(2^(t+q), B)`` statevector array* on the execution engine
  (:mod:`repro.quantum.engine`): every gate is a single ``tensordot`` across
  the whole batch, adjacent gates are fused, the batch is chunked to a
  memory budget, and the readout is the batch-averaged marginal.
  Mathematically identical to evolving ``|0><0| ⊗ I/2^q`` but
  ``O(2^(t+q) · 2^q)`` flops per gate on a flat array instead of a squared
  density matrix, with no purification qubits.
* ``ptm`` (the default for noisy runs up to ``PTM_AUTO_QUBIT_THRESHOLD``
  total qubits) — the circuit and its noise channels are lowered to
  Pauli-transfer matrices and fused into single superoperators
  (:mod:`repro.quantum.ptm`, DESIGN.md §16); a single real ``4^(t+q)``
  Pauli vector evolves through the fused program, so the result is *exact*
  (agrees with ``density`` to floating point) at gate-fusion speed.
* ``trajectory`` (the default for noisy runs above the PTM threshold) — the
  same batched ensemble, unravelled through the configured noise channels by
  stochastic Kraus-branch sampling (one branch per ensemble member after
  each gate), repeated ``n_trajectories`` times; the mean estimates the
  density result and the spread becomes ``p_zero_std``.
* ``purified`` — the Fig. 2 construction: auxiliary qubits and Bell pairs,
  statevector simulation on ``t + 2q`` qubits (legacy route,
  bit-identity-pinned; opt-in gate fusion via ``QTDAConfig.fuse_purified``).
* ``density`` — density-matrix evolution of ``|0><0| ⊗ I/2^q`` on ``t + q``
  qubits, gate by gate (legacy route, bit-identity-pinned; the exact Kraus
  contraction, and the only noise route for hand-built ``NoiseModel``
  objects no :class:`~repro.quantum.channels.NoiseSpec` can express).

This module also hosts the circuit-execution plumbing shared by the
``trotter`` and ``noisy-density`` backends, which differ only in how ``U`` is
synthesised and in how noise is injected.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Optional

import numpy as np

from repro.core.backends.base import BackendResult, EstimationProblem, register_backend
from repro.core.qtda_circuit import QTDACircuitSpec, qtda_circuit
from repro.quantum.channels import NoiseSpec, apply_readout_error
from repro.quantum.density_matrix import DensityMatrix, DensityMatrixSimulator
from repro.quantum.engine import EnsembleExecutor
from repro.quantum.noise import NoiseModel
from repro.quantum.ptm import PTMExecutor
from repro.quantum.sharding import ShardedExecutor
from repro.quantum.statevector import StatevectorSimulator
from repro.utils.rng import as_rng

#: Concrete circuit-execution routes (``"auto"`` resolves to one of these).
CIRCUIT_ROUTES = ("ensemble", "trajectory", "ptm", "purified", "density")

#: Largest ``t + q`` for which ``auto`` prefers the exact ``ptm`` route for
#: declarative noise.  The PTM state is a real ``4^(t+q)`` vector (8 bytes an
#: entry: 134 MB at 12 qubits, 2 GB at 14), so above the threshold ``auto``
#: falls back to stochastic trajectories, whose state stays ``2^(t+q)``.
PTM_AUTO_QUBIT_THRESHOLD = 12


def resolve_circuit_route(
    config, noise_model: Optional[NoiseModel], total_qubits: Optional[int] = None
) -> str:
    """Resolve ``config.circuit_engine`` to a concrete route.

    Gate noise excludes the pure-state routes (an *explicit* ``ensemble`` or
    ``purified`` choice combined with noise raises instead of silently
    dropping either).  ``"auto"`` resolves declarative noise (any model
    expressible as a :class:`~repro.quantum.channels.NoiseSpec`) to the exact
    ``ptm`` route while the register fits the Pauli-vector budget
    (``total_qubits`` is the circuit's ``t + q``; ``None`` — callers that
    cannot know the size — counts as fitting), and to the stochastic
    ``trajectory`` route above :data:`PTM_AUTO_QUBIT_THRESHOLD`.
    Hand-built Kraus lists and gate-filtered models fall back to the exact
    ``density`` contraction (and reject an explicit ``trajectory`` or
    ``ptm`` request — neither can place noise without a spec).
    Noise-free runs resolve ``"auto"`` to ``ensemble``; a zero-strength
    channel counts as noise-free.
    """
    engine = getattr(config, "circuit_engine", "auto")
    if engine not in ("auto",) + CIRCUIT_ROUTES:
        raise ValueError(
            f"circuit_engine must be one of {('auto',) + CIRCUIT_ROUTES}, got {engine!r}"
        )
    spec = noise_model.to_spec() if noise_model is not None else None
    has_gate_noise = noise_model is not None and (spec is None or spec.has_gate_noise)
    if has_gate_noise:
        if engine in ("ensemble", "purified"):
            raise ValueError(
                f"circuit_engine={engine!r} cannot simulate noise channels; "
                "use 'ptm', 'trajectory', 'density' (or 'auto')"
            )
        if engine == "density":
            return "density"
        if spec is None:
            # Hand-built Kraus operators / gate filters have no NoiseSpec
            # form, so neither PTM lowering nor trajectory sampling can
            # place them.
            if engine in ("trajectory", "ptm"):
                raise ValueError(
                    f"circuit_engine={engine!r} requires declarative noise "
                    "(noise_channel & friends); explicit NoiseModel objects "
                    "run on the density route"
                )
            return "density"
        if engine in ("trajectory", "ptm"):
            return engine
        if total_qubits is not None and total_qubits > PTM_AUTO_QUBIT_THRESHOLD:
            return "trajectory"
        return "ptm"
    if engine == "auto":
        return "ensemble"
    return engine


def mixed_initial_state(spec: QTDACircuitSpec) -> DensityMatrix:
    """``|0><0|`` on precision (and auxiliary) registers, ``I/2^q`` on the system."""
    t, q, aux = spec.precision_qubits, spec.system_qubits, spec.auxiliary_qubits
    rho_precision = DensityMatrix.zero_state(t).matrix
    rho_system = DensityMatrix.maximally_mixed(q).matrix
    rho = np.kron(rho_precision, rho_system)
    if aux:
        rho = np.kron(rho, DensityMatrix.zero_state(aux).matrix)
    return DensityMatrix(rho)


def _resolve_engine_executor(config, fuse: bool = True):
    """The engine executor a circuit route should run on.

    Returns ``(executor, shard_info)`` where ``shard_info`` is a
    ``(shards, shard_backend, device)`` provenance triple, all ``None`` for
    the plain single-executor path.  ``config.shards > 1`` selects a
    :class:`~repro.quantum.sharding.ShardedExecutor` over the configured
    backend — sharded results are bit-identical to the unsharded executor's,
    so routing through here never changes numbers, only throughput.
    """
    shards = int(getattr(config, "shards", 1) or 1)
    if shards <= 1:
        return EnsembleExecutor(fuse=fuse), (None, None, None)
    shard_backend = str(getattr(config, "shard_backend", "process"))
    devices = getattr(config, "devices", None)
    executor = ShardedExecutor(shards, backend=shard_backend, devices=devices, fuse=fuse)
    return executor, (executor.num_shards, executor.backend, executor.device_label)


def _ensemble_route_result(problem: EstimationProblem, config, synthesis: str) -> BackendResult:
    """Batched-statevector execution of the mixed-state circuit.

    The circuit is built without purification on ``t + q`` qubits; the
    ``2^q`` system basis states form the ensemble (full-register basis index
    ``b`` — the precision register reads ``|0...0>``, so the indices coincide).
    The exact synthesis uses spectral controlled powers (one ``eigh`` of
    ``H``, phases raised to ``2^j``); the engine fuses adjacent small gates
    (cached per circuit fingerprint) and chunks the batch to its memory
    budget.
    """
    hamiltonian = problem.dense_hamiltonian(config)
    circuit, spec = qtda_circuit(
        hamiltonian,
        precision_qubits=config.precision_qubits,
        use_purification=False,
        synthesis=synthesis,
        trotter_steps=config.trotter_steps,
        trotter_order=config.trotter_order,
        power_synthesis="spectral" if synthesis == "exact" else "chain",
    )
    executor, (shards, shard_backend, device) = _resolve_engine_executor(config)
    plan = executor.gate_plan(circuit)
    distribution = executor.basis_ensemble_distribution(
        circuit,
        qubits=list(spec.precision_register),
        basis_states=range(2**spec.system_qubits),
        plan=plan,
    )
    return BackendResult(
        distribution=distribution,
        num_system_qubits=hamiltonian.num_qubits,
        lambda_max=hamiltonian.padded.lambda_max,
        engine_route="ensemble",
        fused_gates=len(plan),
        shards=shards,
        shard_backend=shard_backend,
        device=device,
    )


def _trajectory_route_result(
    problem: EstimationProblem,
    config,
    synthesis: str,
    spec: NoiseSpec,
    rng: np.random.Generator,
) -> BackendResult:
    """Stochastic Kraus-trajectory execution of the noisy mixed-state circuit.

    The circuit construction mirrors :func:`_ensemble_route_result` (no
    purification, ``t + q`` qubits); both synthesis styles emit the same gate
    *sequence* as the legacy density route, so ``spec.channels_for_gate``
    places noise at identical points and the trajectory mean converges to the
    density result.  Fusion is bypassed inside the executor for the same
    reason.  The spread over ``config.n_trajectories`` repetitions surfaces
    as ``p_zero_std``.
    """
    hamiltonian = problem.dense_hamiltonian(config)
    circuit, circuit_spec = qtda_circuit(
        hamiltonian,
        precision_qubits=config.precision_qubits,
        use_purification=False,
        synthesis=synthesis,
        trotter_steps=config.trotter_steps,
        trotter_order=config.trotter_order,
        power_synthesis="spectral" if synthesis == "exact" else "chain",
    )
    n_trajectories = int(getattr(config, "n_trajectories", 8))
    executor, (shards, shard_backend, device) = _resolve_engine_executor(config, fuse=False)
    distribution, sem = executor.trajectory_basis_distribution(
        circuit,
        qubits=list(circuit_spec.precision_register),
        basis_states=range(2**circuit_spec.system_qubits),
        noise_spec=spec,
        rng=rng,
        n_trajectories=n_trajectories,
    )
    return BackendResult(
        distribution=distribution,
        num_system_qubits=hamiltonian.num_qubits,
        lambda_max=hamiltonian.padded.lambda_max,
        p_zero_std=float(sem[0]) if n_trajectories > 1 else None,
        engine_route="trajectory",
        n_trajectories=n_trajectories,
        noise_spec=spec.as_dict(),
        shards=shards,
        shard_backend=shard_backend,
        device=device,
    )


def _ptm_route_result(
    problem: EstimationProblem, config, synthesis: str, spec: NoiseSpec
) -> BackendResult:
    """Exact noisy execution on the fused Pauli-transfer-matrix route.

    The circuit construction mirrors :func:`_ensemble_route_result` (no
    purification, ``t + q`` qubits, spectral controlled powers for the exact
    synthesis); gates and their attached noise channels are lowered to PTMs
    and fused into single superoperators
    (:func:`~repro.quantum.fusion.fuse_ptm_program`, cached per
    circuit+NoiseSpec fingerprint), then a single real ``4^(t+q)`` Pauli
    vector evolves through the program.  No sampling: the readout equals the
    density route's to floating point, and ``fused_gates`` carries the fused
    superoperator count.  The Pauli state is one column, so ``config.shards``
    has no batch axis to split here — the route runs unsharded (provenance
    ``shards=None``) regardless.
    """
    hamiltonian = problem.dense_hamiltonian(config)
    circuit, circuit_spec = qtda_circuit(
        hamiltonian,
        precision_qubits=config.precision_qubits,
        use_purification=False,
        synthesis=synthesis,
        trotter_steps=config.trotter_steps,
        trotter_order=config.trotter_order,
        power_synthesis="spectral" if synthesis == "exact" else "chain",
    )
    executor = PTMExecutor()
    gate_spec = spec if spec.has_gate_noise else None
    program = executor.program(circuit, noise_spec=gate_spec)
    distribution = executor.qtda_distribution(
        circuit,
        precision_qubits=list(circuit_spec.precision_register),
        precision_count=circuit_spec.precision_qubits,
        system_count=circuit_spec.system_qubits,
        noise_spec=gate_spec,
        program=program,
    )
    if spec.readout_error > 0:
        distribution = apply_readout_error(distribution, spec.readout_error)
    return BackendResult(
        distribution=distribution,
        num_system_qubits=hamiltonian.num_qubits,
        lambda_max=hamiltonian.padded.lambda_max,
        engine_route="ptm",
        fused_gates=program.num_superops,
        noise_spec=spec.as_dict() if not spec.is_noiseless else None,
    )


def _executed_noise_spec(config, noise_model: Optional[NoiseModel]) -> NoiseSpec:
    """The :class:`NoiseSpec` a run executes under: the model's spec form (if
    any) with the config's declarative ``readout_error`` folded in."""
    spec = noise_model.to_spec() if noise_model is not None else None
    readout = float(getattr(config, "readout_error", 0.0) or 0.0)
    if spec is None:
        return NoiseSpec(readout_error=readout)
    if readout > spec.readout_error:
        spec = NoiseSpec.from_dict({**spec.as_dict(), "readout_error": readout})
    return spec


def circuit_backend_result(
    problem: EstimationProblem,
    config,
    synthesis: str,
    noise_model: Optional[NoiseModel],
    use_purification: Optional[bool] = None,
    rng: Optional[np.random.Generator] = None,
) -> BackendResult:
    """Build and execute the Fig. 6 circuit, returning the readout distribution.

    The route comes from ``config.circuit_engine`` via
    :func:`resolve_circuit_route`; the legacy ``use_purification`` keyword,
    when passed explicitly, forces the corresponding legacy route (purified
    statevector, or the density-matrix evolution — noise always implies the
    latter), bypassing the ensemble engine.  ``rng`` drives the trajectory
    route's branch sampling (falls back to a ``config.seed``-derived
    generator); a configured ``readout_error`` is applied to the final
    distribution on every route (exact per-bit confusion contraction).
    """
    if use_purification is None:
        # The auto PTM-vs-trajectory threshold needs the register size; the
        # padded Hamiltonian (a Gershgorin bound, no eigensolve) is cheap.
        total_qubits = config.precision_qubits + problem.dense_hamiltonian(config).num_qubits
        route = resolve_circuit_route(config, noise_model, total_qubits=total_qubits)
    else:
        route = "purified" if (use_purification and noise_model is None) else "density"
    spec = _executed_noise_spec(config, noise_model)
    if route == "ptm":
        return _ptm_route_result(problem, config, synthesis, spec)
    if route == "trajectory":
        if rng is None:
            rng = as_rng(getattr(config, "seed", None))
        return _trajectory_route_result(problem, config, synthesis, spec, rng)
    if route == "ensemble":
        result = _ensemble_route_result(problem, config, synthesis)
        if spec.readout_error > 0:
            result = dc_replace(
                result,
                distribution=apply_readout_error(result.distribution, spec.readout_error),
                noise_spec=spec.as_dict(),
            )
        return result

    hamiltonian = problem.dense_hamiltonian(config)
    circuit, circuit_spec = qtda_circuit(
        hamiltonian,
        precision_qubits=config.precision_qubits,
        use_purification=route == "purified",
        synthesis=synthesis,
        trotter_steps=config.trotter_steps,
        trotter_order=config.trotter_order,
    )
    precision_register = list(circuit_spec.precision_register)
    if route == "density":
        sim = DensityMatrixSimulator(noise_model=noise_model)
        final = sim.run(circuit, initial_state=mixed_initial_state(circuit_spec))
        distribution = final.marginal_probabilities(precision_register)
    else:
        fuse_purified = bool(getattr(config, "fuse_purified", False))
        distribution = StatevectorSimulator(fuse=fuse_purified).probabilities(
            circuit, qubits=precision_register
        )
    if spec.readout_error > 0:
        distribution = apply_readout_error(distribution, spec.readout_error)
    return BackendResult(
        distribution=distribution,
        num_system_qubits=hamiltonian.num_qubits,
        lambda_max=hamiltonian.padded.lambda_max,
        engine_route=route,
        noise_spec=spec.as_dict() if not spec.is_noiseless else None,
    )


class StatevectorBackend:
    """Explicit Fig. 6 circuit with exact controlled powers of ``U``."""

    name = "statevector"
    description = "explicit Fig. 6 circuit with exact controlled powers of U (ensemble, ptm, trajectory, purified or density route)"
    prefers_sparse = False
    supported_formats = ("dense",)
    supports_noise = True

    def run(self, problem: EstimationProblem, config, rng: np.random.Generator) -> BackendResult:
        return circuit_backend_result(
            problem, config, "exact", config.resolved_noise_model(), rng=rng
        )


register_backend(StatevectorBackend.name, StatevectorBackend())
