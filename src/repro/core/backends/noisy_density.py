"""The ``noisy-density`` backend — Fig. 6 under a per-gate noise channel.

The paper's conclusion flags "how the algorithm behaves on NISQ devices" as
the open question; this backend makes that question a first-class estimator
workload instead of a one-off ablation script.  The Fig. 6 circuit (exact
controlled powers of ``U``) is evolved by the density-matrix simulator with a
single-qubit Kraus channel applied after every gate, parametrised directly
from :class:`QTDAConfig`:

* ``noise_channel`` — ``"depolarizing"``, ``"bit-flip"``, ``"phase-flip"``
  or ``"amplitude-damping"`` (see :data:`repro.quantum.noise.NOISE_CHANNELS`);
* ``noise_strength`` — the channel's error probability per gate per qubit;
* the extended :class:`repro.quantum.channels.NoiseSpec` fields
  (``noise_gate_strengths``, ``noise_two_qubit_channel``/``..._strength``,
  ``readout_error``) — resolved through the shared channel layer, so the
  exact density contraction and the ``trajectory`` route place noise
  identically.

The mixed input state ``I/2^q`` is prepared directly on the density matrix
(no purification — the auxiliary register would only add noisy gates without
changing the ideal state), so with ``noise_strength=0`` the backend runs the
same circuit on the same simulator as the non-purified ``statevector``
density route and matches it to machine precision.
"""

from __future__ import annotations

import numpy as np

from repro.core.backends.base import BackendResult, EstimationProblem, register_backend
from repro.core.backends.statevector import circuit_backend_result
from repro.quantum.noise import NoiseModel


class NoisyDensityBackend:
    """Density-matrix execution of Fig. 6 with a per-gate noise channel."""

    name = "noisy-density"
    description = "Fig. 6 on the density-matrix simulator with a per-gate Kraus channel (noise_channel/noise_strength)"
    prefers_sparse = False
    supported_formats = ("dense",)
    supports_noise = True

    def run(self, problem: EstimationProblem, config, rng: np.random.Generator) -> BackendResult:
        engine = getattr(config, "circuit_engine", "auto")
        if engine not in ("auto", "density"):
            # This backend is the density-matrix route by construction (even
            # its noiseless limit runs an identity channel); silently taking
            # it anyway would drop an explicit pure-state engine request.
            raise ValueError(
                f"the noisy-density backend always runs the density-matrix route; "
                f"circuit_engine={engine!r} cannot be honoured (use 'auto' or 'density')"
            )
        noise = config.resolved_noise_model()
        if noise is None:
            # No channel configured: run the noiseless limit explicitly (a
            # zero-strength depolarising channel is the identity map).
            noise = NoiseModel.depolarizing(0.0)
        return circuit_backend_result(
            problem, config, synthesis="exact", noise_model=noise, use_purification=False, rng=rng
        )


register_backend(NoisyDensityBackend.name, NoisyDensityBackend())
