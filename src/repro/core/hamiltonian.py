"""Spectral rescaling and the QTDA unitary (Eqs. 8–9).

QPE reads phases ``θ ∈ [0, 1)`` of eigenvalues ``e^{2πiθ}`` of a unitary, so
the Laplacian spectrum must be mapped into ``[0, 2π)`` before exponentiation.
The paper rescales the padded Laplacian by ``δ / λ̃_max`` with ``δ`` slightly
below ``2π``:

    H = (δ / λ̃_max) Δ̃_k,      U = e^{iH}.

Zero eigenvalues of ``Δ_k`` map to phase 0 exactly, so counting the all-zero
phase readout counts the kernel.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import sparse as _sparse
from scipy.linalg import expm

from repro.core.operators import LaplacianOperator, as_operator
from repro.core.padding import PaddedLaplacian, pad_laplacian
from repro.paulis.decompose import pauli_decompose
from repro.paulis.gershgorin import gershgorin_bound
from repro.paulis.pauli_sum import PauliSum
from repro.utils.validation import check_symmetric


@dataclass(frozen=True)
class RescaledHamiltonian:
    """The rescaled Hamiltonian ``H`` together with its provenance.

    Attributes
    ----------
    matrix:
        Dense ``2^q x 2^q`` symmetric matrix ``H = (δ/λ̃_max) Δ̃_k``.
    padded:
        The :class:`PaddedLaplacian` it was built from.
    delta:
        The ``δ`` used for the rescaling.
    scale:
        The actual factor ``δ / λ̃_max`` applied (1.0 when ``λ̃_max = 0``).
    """

    matrix: np.ndarray
    padded: PaddedLaplacian
    delta: float
    scale: float

    @property
    def num_qubits(self) -> int:
        """System-register size ``q``."""
        return self.padded.num_qubits

    def unitary(self) -> np.ndarray:
        """The dense QTDA unitary ``U = exp(iH)``."""
        return expm(1j * self.matrix)

    def eigenphases(self, atol: float = 1e-12) -> np.ndarray:
        """QPE phases ``θ_j = λ_j(H) / 2π ∈ [0, 1)`` of the unitary's eigenvalues.

        The Laplacian is positive semi-definite, but floating-point
        eigenvalues of its kernel can come out as tiny negative numbers; left
        untreated they would wrap to phases just below 1.  They are clipped
        to exactly 0 so the kernel always reads as phase 0.
        """
        eigenvalues = np.linalg.eigvalsh(self.matrix)
        eigenvalues = np.where(np.abs(eigenvalues) <= atol, 0.0, eigenvalues)
        eigenvalues = np.clip(eigenvalues, 0.0, None)
        return (eigenvalues / (2.0 * np.pi)) % 1.0

    def pauli_decomposition(self, tol: float = 1e-10) -> PauliSum:
        """Pauli expansion of ``H`` (Eq. 19 for the worked example)."""
        return pauli_decompose(self.matrix, tol=tol)

    def zero_eigenvalue_count(self, atol: float = 1e-8) -> int:
        """Exact number of zero eigenvalues of ``H`` (ground truth for tests)."""
        eigenvalues = np.linalg.eigvalsh(self.matrix)
        return int(np.count_nonzero(np.abs(eigenvalues) <= atol))


def build_hamiltonian(
    laplacian: np.ndarray,
    delta: Optional[float] = None,
    padding: str = "identity",
) -> RescaledHamiltonian:
    """Pad and rescale a combinatorial Laplacian into the QPE Hamiltonian.

    Parameters
    ----------
    laplacian:
        The ``|S_k| x |S_k|`` combinatorial Laplacian ``Δ_k`` (dense,
        ``scipy.sparse`` or a :class:`~repro.core.operators.LaplacianOperator`;
        non-dense input is densified — the padded Hamiltonian is dense anyway).
    delta:
        Spectral scaling constant ``δ`` (defaults to ``0.9 · 2π ≈ 5.65``,
        close to the worked example's ``δ = 6``).  The margin below 2π
        matters: phases are periodic, so an eigenvalue mapped to a phase just
        below 1 is indistinguishable from phase 0 and would leak into the
        Betti count.
    padding:
        ``"identity"`` (Eq. 7) or ``"zero"`` (ablation baseline).

    Notes
    -----
    When the Laplacian is identically zero, ``λ̃_max = 0`` and no rescaling is
    needed (every eigenvalue is already 0); the scale is set to 1.
    """
    if delta is None:
        delta = 2.0 * np.pi * 0.9
    delta = float(delta)
    if not 0.0 < delta < 2.0 * np.pi:
        raise ValueError(f"delta must lie in (0, 2π), got {delta}")
    padded = pad_laplacian(_as_dense_laplacian(laplacian), mode=padding)
    if padded.lambda_max > 0:
        scale = delta / padded.lambda_max
    else:
        scale = 1.0
    matrix = scale * padded.matrix
    return RescaledHamiltonian(matrix=matrix, padded=padded, delta=delta, scale=scale)


def qtda_unitary(laplacian: np.ndarray, delta: Optional[float] = None, padding: str = "identity") -> np.ndarray:
    """One-call convenience: the dense unitary ``U = exp(iH)`` for a Laplacian."""
    return build_hamiltonian(laplacian, delta=delta, padding=padding).unitary()


# ---------------------------------------------------------------------------
# Analytical padded spectra (the fast path of the ``exact`` backend)
# ---------------------------------------------------------------------------

def _as_dense_laplacian(laplacian) -> np.ndarray:
    """Densify a Laplacian (array, sparse or operator) into a contiguous float array."""
    return as_operator(laplacian).to_dense()


def laplacian_spectrum_info(laplacian) -> Tuple[np.ndarray, float]:
    """Eigenvalues and Gershgorin bound of the *unpadded* ``|S_k| x |S_k|`` Laplacian.

    This is the expensive half of an exact-backend estimate; everything
    downstream (padding, rescaling, QPE phases) follows analytically from it
    — see :func:`padded_spectrum` and DESIGN.md §6.  Accepts dense arrays,
    ``scipy.sparse`` matrices and :class:`~repro.core.operators.
    LaplacianOperator` objects (the eigendecomposition itself is dense, so
    non-dense inputs are materialised here).
    """
    # Same validation the dense build_hamiltonian path applies: eigvalsh
    # would silently read one triangle of an asymmetric matrix.
    lap = np.asarray(check_symmetric(_as_dense_laplacian(laplacian), "laplacian"), dtype=float)
    if lap.shape[0] == 0:
        raise ValueError("Cannot diagonalise an empty (0x0) Laplacian")
    return np.linalg.eigvalsh(lap), gershgorin_bound(lap)


class SpectrumCache:
    """Thread-safe LRU cache of Laplacian spectra, keyed by operator fingerprint.

    The estimator's ``exact`` backend needs only the eigenvalues of the small
    (unpadded) Laplacian; experiment drivers revisit the same Laplacians many
    times — across precision/shot settings, across ε values whose edge sets
    coincide, and across repeated windows — so caching the eigendecomposition
    removes the dominant per-estimate cost.  Cached values are exactly what
    :func:`laplacian_spectrum_info` would recompute, so cache hits are
    bit-identical to cache misses.

    Keys are :meth:`~repro.core.operators.LaplacianOperator.fingerprint`
    content hashes, so sparse (and tagged matrix-free) operators are keyed
    from their native storage — a cached sparse lookup never materialises a
    dense matrix.  Operators without a fingerprint (untagged matrix-free
    closures) bypass the cache instead of densifying just to compute a key.
    """

    def __init__(self, maxsize: int = 1024):
        self.maxsize = int(maxsize)
        self._store: "OrderedDict[bytes, Tuple[np.ndarray, float]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def spectrum(self, laplacian) -> Tuple[np.ndarray, float]:
        """(eigenvalues, Gershgorin ``λ̃_max``) of the unpadded Laplacian, cached."""
        operator = as_operator(laplacian)
        if self.maxsize <= 0:
            return laplacian_spectrum_info(operator)
        key = operator.fingerprint()
        if key is None:
            # Unfingerprintable (untagged matrix-free) operator: computing a
            # content key would require densifying, defeating the cache.
            return laplacian_spectrum_info(operator)
        with self._lock:
            cached = self._store.get(key)
            if cached is not None:
                self._store.move_to_end(key)
                self.hits += 1
                return cached
        value = laplacian_spectrum_info(operator)
        with self._lock:
            self.misses += 1
            self._store[key] = value
            self._store.move_to_end(key)
            while len(self._store) > self.maxsize:
                self._store.popitem(last=False)
        return value


@dataclass(frozen=True)
class PaddedSpectrum:
    """Spectral view of the padded, rescaled Hamiltonian — no ``2^q`` matrix built.

    Identity padding (Eq. 7) appends ``2^q - |S_k|`` copies of the *known*
    eigenvalue ``λ̃_max / 2`` to the Laplacian spectrum (zero padding appends
    zeros), and the rescaling multiplies every eigenvalue by ``δ / λ̃_max``.
    Both operations act on eigenvalues directly, so the padded Hamiltonian's
    eigenphases follow from the small ``|S_k| x |S_k|`` eigendecomposition
    without ever densifying or rediagonalising the ``2^q x 2^q`` matrix.
    """

    eigenvalues: np.ndarray  # of the unpadded |S_k| x |S_k| Laplacian
    lambda_max: float
    delta: float
    scale: float
    padding: str
    original_dimension: int
    num_qubits: int

    @property
    def padded_dimension(self) -> int:
        return 2**self.num_qubits

    def padded_eigenvalues(self) -> np.ndarray:
        """Eigenvalues of the padded (unscaled) Laplacian ``Δ̃_k``."""
        pad_count = self.padded_dimension - self.original_dimension
        fill = self.lambda_max / 2.0 if self.padding == "identity" else 0.0
        return np.concatenate([self.eigenvalues, np.full(pad_count, fill)])

    def hamiltonian_eigenvalues(self) -> np.ndarray:
        """Eigenvalues of ``H = (δ / λ̃_max) Δ̃_k``."""
        return self.scale * self.padded_eigenvalues()

    def eigenphases(self, atol: float = 1e-12) -> np.ndarray:
        """QPE phases ``θ_j ∈ [0, 1)``, with the kernel clipped to exactly 0.

        Mirrors :meth:`RescaledHamiltonian.eigenphases` (same tolerance, same
        clipping) so the analytical route is interchangeable with the dense
        one.
        """
        eigenvalues = self.hamiltonian_eigenvalues()
        eigenvalues = np.where(np.abs(eigenvalues) <= atol, 0.0, eigenvalues)
        eigenvalues = np.clip(eigenvalues, 0.0, None)
        return (eigenvalues / (2.0 * np.pi)) % 1.0

    def zero_eigenvalue_count(self, atol: float = 1e-8) -> int:
        """Kernel dimension of the *unpadded* Laplacian — the exact ``β_k``."""
        return int(np.count_nonzero(np.abs(self.eigenvalues) <= atol))


def padded_spectrum(
    laplacian,
    delta: Optional[float] = None,
    padding: str = "identity",
    cache: Optional[SpectrumCache] = None,
) -> PaddedSpectrum:
    """Spectral counterpart of :func:`build_hamiltonian`.

    Diagonalises the small ``|S_k| x |S_k|`` Laplacian (given as a dense
    array, ``scipy.sparse`` matrix or :class:`~repro.core.operators.
    LaplacianOperator`) — through ``cache`` when one is supplied — and
    derives the padded, rescaled Hamiltonian's spectrum analytically instead
    of materialising the ``2^q x 2^q`` matrix.
    """
    if delta is None:
        delta = 2.0 * np.pi * 0.9
    delta = float(delta)
    if not 0.0 < delta < 2.0 * np.pi:
        raise ValueError(f"delta must lie in (0, 2π), got {delta}")
    if padding not in ("identity", "zero"):
        raise ValueError(f"Unknown padding mode {padding!r}")
    operator = as_operator(laplacian)
    dim = operator.dim
    if dim == 0:
        raise ValueError("Cannot pad an empty (0x0) Laplacian; the complex has no k-simplices")
    if cache is not None:
        eigenvalues, lam = cache.spectrum(operator)
    else:
        eigenvalues, lam = laplacian_spectrum_info(operator)
    num_qubits = max(1, int(np.ceil(np.log2(dim))))
    scale = delta / lam if lam > 0 else 1.0
    return PaddedSpectrum(
        eigenvalues=eigenvalues,
        lambda_max=lam,
        delta=delta,
        scale=scale,
        padding=padding,
        original_dimension=dim,
        num_qubits=num_qubits,
    )
