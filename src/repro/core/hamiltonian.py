"""Spectral rescaling and the QTDA unitary (Eqs. 8–9).

QPE reads phases ``θ ∈ [0, 1)`` of eigenvalues ``e^{2πiθ}`` of a unitary, so
the Laplacian spectrum must be mapped into ``[0, 2π)`` before exponentiation.
The paper rescales the padded Laplacian by ``δ / λ̃_max`` with ``δ`` slightly
below ``2π``:

    H = (δ / λ̃_max) Δ̃_k,      U = e^{iH}.

Zero eigenvalues of ``Δ_k`` map to phase 0 exactly, so counting the all-zero
phase readout counts the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.linalg import expm

from repro.core.padding import PaddedLaplacian, pad_laplacian
from repro.paulis.decompose import pauli_decompose
from repro.paulis.pauli_sum import PauliSum


@dataclass(frozen=True)
class RescaledHamiltonian:
    """The rescaled Hamiltonian ``H`` together with its provenance.

    Attributes
    ----------
    matrix:
        Dense ``2^q x 2^q`` symmetric matrix ``H = (δ/λ̃_max) Δ̃_k``.
    padded:
        The :class:`PaddedLaplacian` it was built from.
    delta:
        The ``δ`` used for the rescaling.
    scale:
        The actual factor ``δ / λ̃_max`` applied (1.0 when ``λ̃_max = 0``).
    """

    matrix: np.ndarray
    padded: PaddedLaplacian
    delta: float
    scale: float

    @property
    def num_qubits(self) -> int:
        """System-register size ``q``."""
        return self.padded.num_qubits

    def unitary(self) -> np.ndarray:
        """The dense QTDA unitary ``U = exp(iH)``."""
        return expm(1j * self.matrix)

    def eigenphases(self, atol: float = 1e-12) -> np.ndarray:
        """QPE phases ``θ_j = λ_j(H) / 2π ∈ [0, 1)`` of the unitary's eigenvalues.

        The Laplacian is positive semi-definite, but floating-point
        eigenvalues of its kernel can come out as tiny negative numbers; left
        untreated they would wrap to phases just below 1.  They are clipped
        to exactly 0 so the kernel always reads as phase 0.
        """
        eigenvalues = np.linalg.eigvalsh(self.matrix)
        eigenvalues = np.where(np.abs(eigenvalues) <= atol, 0.0, eigenvalues)
        eigenvalues = np.clip(eigenvalues, 0.0, None)
        return (eigenvalues / (2.0 * np.pi)) % 1.0

    def pauli_decomposition(self, tol: float = 1e-10) -> PauliSum:
        """Pauli expansion of ``H`` (Eq. 19 for the worked example)."""
        return pauli_decompose(self.matrix, tol=tol)

    def zero_eigenvalue_count(self, atol: float = 1e-8) -> int:
        """Exact number of zero eigenvalues of ``H`` (ground truth for tests)."""
        eigenvalues = np.linalg.eigvalsh(self.matrix)
        return int(np.count_nonzero(np.abs(eigenvalues) <= atol))


def build_hamiltonian(
    laplacian: np.ndarray,
    delta: Optional[float] = None,
    padding: str = "identity",
) -> RescaledHamiltonian:
    """Pad and rescale a combinatorial Laplacian into the QPE Hamiltonian.

    Parameters
    ----------
    laplacian:
        The ``|S_k| x |S_k|`` combinatorial Laplacian ``Δ_k``.
    delta:
        Spectral scaling constant ``δ`` (defaults to ``0.9 · 2π ≈ 5.65``,
        close to the worked example's ``δ = 6``).  The margin below 2π
        matters: phases are periodic, so an eigenvalue mapped to a phase just
        below 1 is indistinguishable from phase 0 and would leak into the
        Betti count.
    padding:
        ``"identity"`` (Eq. 7) or ``"zero"`` (ablation baseline).

    Notes
    -----
    When the Laplacian is identically zero, ``λ̃_max = 0`` and no rescaling is
    needed (every eigenvalue is already 0); the scale is set to 1.
    """
    if delta is None:
        delta = 2.0 * np.pi * 0.9
    delta = float(delta)
    if not 0.0 < delta < 2.0 * np.pi:
        raise ValueError(f"delta must lie in (0, 2π), got {delta}")
    padded = pad_laplacian(laplacian, mode=padding)
    if padded.lambda_max > 0:
        scale = delta / padded.lambda_max
    else:
        scale = 1.0
    matrix = scale * padded.matrix
    return RescaledHamiltonian(matrix=matrix, padded=padded, delta=delta, scale=scale)


def qtda_unitary(laplacian: np.ndarray, delta: Optional[float] = None, padding: str = "identity") -> np.ndarray:
    """One-call convenience: the dense unitary ``U = exp(iH)`` for a Laplacian."""
    return build_hamiltonian(laplacian, delta=delta, padding=padding).unitary()
