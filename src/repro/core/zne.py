"""Zero-noise extrapolation (ZNE) for the QPE Betti-number estimator.

The fast noisy routes make noisy runs cheap enough to *sweep*: run the same
estimation at several noise strengths, fit the response of ``p(0)`` (or of
``β̃_k``) to the strength, and extrapolate to zero — Richardson
extrapolation, the standard NISQ error-mitigation technique.  With the
depolarising channel the leading dependence of ``p(0)`` on the per-gate error
probability is smooth (each channel application mixes in one more Pauli
with probability ``∝ p``), so a low-order polynomial fit captures it well at
the strengths of interest (``p ≲ 0.05``).

The helper is deliberately declarative: it takes a noisy
:class:`~repro.core.config.QTDAConfig` (any config with a ``noise_channel``),
re-runs it at scaled strengths via ``config.replace(noise_strength=s)`` on
whichever route the config resolves to (the exact fused-``ptm`` route by
default for declarative noise, so every fit point is an exact expectation;
``circuit_engine="trajectory"`` sweeps with Monte-Carlo error bars
instead), and Richardson-fits the results.  See
``examples/zne_extrapolation.py`` for an end-to-end run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import QTDAConfig
from repro.core.estimator import BettiEstimate, QTDABettiEstimator
from repro.tda.complexes import SimplicialComplex


def richardson_extrapolate(
    strengths: Sequence[float], values: Sequence[float], order: Optional[int] = None
) -> Tuple[float, np.ndarray]:
    """Polynomial (Richardson) extrapolation of ``values`` to strength zero.

    Fits ``value(s) = Σ_j c_j s^j`` of degree ``order`` (default:
    ``min(2, len(strengths) - 1)`` — quadratic when the sweep affords it) and
    returns ``(value at s=0, coefficients in np.polyfit order)``.
    """
    s = np.asarray(list(strengths), dtype=float)
    v = np.asarray(list(values), dtype=float)
    if s.shape != v.shape or s.ndim != 1:
        raise ValueError("strengths and values must be 1-D sequences of equal length")
    if s.size < 2:
        raise ValueError("zero-noise extrapolation needs at least two strengths")
    if np.unique(s).size != s.size:
        raise ValueError("strengths must be distinct")
    degree = min(2, s.size - 1) if order is None else int(order)
    if not 1 <= degree < s.size:
        raise ValueError(
            f"order must lie in [1, {s.size - 1}] for {s.size} strengths, got {degree}"
        )
    coefficients = np.polyfit(s, v, degree)
    return float(np.polyval(coefficients, 0.0)), coefficients


@dataclass(frozen=True)
class ZNEResult:
    """Outcome of one zero-noise extrapolation sweep.

    Attributes
    ----------
    strengths, p_zeros, betti_estimates:
        The swept noise strengths and the measured responses at each.
    p_zero_extrapolated, betti_extrapolated:
        The Richardson fits evaluated at strength zero.
    betti_rounded:
        ``betti_extrapolated`` rounded to the nearest integer.
    order:
        Polynomial degree of the fit.
    estimates:
        The full :class:`BettiEstimate` per strength (route/trajectory
        provenance included).
    """

    strengths: Tuple[float, ...]
    p_zeros: Tuple[float, ...]
    betti_estimates: Tuple[float, ...]
    p_zero_extrapolated: float
    betti_extrapolated: float
    betti_rounded: int
    order: int
    estimates: Tuple[BettiEstimate, ...] = field(repr=False)

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe summary (the example script prints this)."""
        return {
            "strengths": list(self.strengths),
            "p_zeros": list(self.p_zeros),
            "betti_estimates": list(self.betti_estimates),
            "p_zero_extrapolated": self.p_zero_extrapolated,
            "betti_extrapolated": self.betti_extrapolated,
            "betti_rounded": self.betti_rounded,
            "order": self.order,
            "engine_routes": [e.engine_route for e in self.estimates],
        }


def zero_noise_extrapolation(
    complex_: SimplicialComplex,
    k: int,
    config: QTDAConfig,
    scale_factors: Sequence[float] = (1.0, 2.0, 3.0),
    order: Optional[int] = None,
) -> ZNEResult:
    """Estimate ``β_k`` at zero noise by Richardson extrapolation of a strength sweep.

    Runs the estimator at ``config.noise_strength`` multiplied by each of
    ``scale_factors`` (all on the route the config resolves to — the exact
    fused-``ptm`` route for declarative noise, which is what makes the
    sweep affordable) and extrapolates ``p(0)`` to strength zero.  The
    Betti extrapolation is ``2^q`` times the extrapolated ``p(0)``.

    ``config`` must carry declarative noise (``noise_channel`` with
    ``noise_strength > 0``); each sweep point reuses the config's seed, so
    the sweep is deterministic given the config.
    """
    if config.noise_channel is None or config.noise_strength <= 0:
        raise ValueError(
            "zero_noise_extrapolation needs a config with noise_channel and "
            "noise_strength > 0 (the strengths to sweep are multiples of it)"
        )
    factors = [float(f) for f in scale_factors]
    if len(factors) < 2:
        raise ValueError("scale_factors must contain at least two values")
    if any(f <= 0 for f in factors):
        raise ValueError("scale_factors must be positive")
    strengths = [config.noise_strength * f for f in factors]
    if any(s > 1.0 for s in strengths):
        raise ValueError(
            f"scaled strengths {strengths} exceed 1.0; lower noise_strength or the factors"
        )
    estimates: List[BettiEstimate] = []
    for strength in strengths:
        estimator = QTDABettiEstimator(config.replace(noise_strength=strength))
        estimates.append(estimator.estimate(complex_, k))
    p_zeros = [e.p_zero for e in estimates]
    p_zero_zero, coefficients = richardson_extrapolate(strengths, p_zeros, order=order)
    dim = 2 ** estimates[0].num_system_qubits
    betti = dim * p_zero_zero
    return ZNEResult(
        strengths=tuple(strengths),
        p_zeros=tuple(p_zeros),
        betti_estimates=tuple(e.betti_estimate for e in estimates),
        p_zero_extrapolated=p_zero_zero,
        betti_extrapolated=float(betti),
        betti_rounded=int(round(betti)),
        order=len(coefficients) - 1,
        estimates=tuple(estimates),
    )
