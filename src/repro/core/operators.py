"""The Laplacian operator layer — one seam between matrices and backends.

Every layer of the estimator used to funnel combinatorial Laplacians around
as raw ``ndarray`` / ``scipy.sparse`` objects, which forced format decisions
(densify? re-sparsify? hash how?) onto each consumer separately.  This module
centralises them: a :class:`LaplacianOperator` wraps a dense array, a CSR
matrix or a matrix-free ``matvec`` closure behind one interface —

* ``shape`` / ``dim`` — the ``|S_k| x |S_k|`` geometry;
* ``matvec(x)`` — the only primitive an iterative backend needs;
* ``to_dense()`` / ``to_sparse()`` — explicit, on-demand format conversion
  (a matrix-free operator materialises by applying ``matvec`` to identity
  columns, so conversion is always *possible*, just not always cheap);
* ``gershgorin_bound()`` — the Eq. 7 ``λ̃_max`` in whatever way is cheap for
  the format (row reductions, never a diagonalisation);
* ``trace()`` / ``frobenius_norm_squared()`` — the moment reductions the
  surrogate-spectrum and stochastic-trace backends need;
* ``fingerprint()`` — a content hash so :class:`~repro.core.hamiltonian.
  SpectrumCache` can key sparse and matrix-free operators without ever
  densifying them (``None`` marks an operator as uncacheable).

Consumers negotiate formats through :data:`OPERATOR_FORMATS` and
:func:`as_operator`; see DESIGN.md §9.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Optional, Tuple

import numpy as np
from scipy import sparse as _sparse

from repro.paulis.gershgorin import gershgorin_bound as _dense_gershgorin

#: Canonical operator format names, in the order backends usually prefer
#: them: ``"matrix-free"`` (matvec only), ``"sparse"`` (CSR), ``"dense"``.
OPERATOR_FORMATS = ("matrix-free", "sparse", "dense")

#: Formats every operator can be converted *to* (conversion cost varies).
DENSE, SPARSE, MATRIX_FREE = "dense", "sparse", "matrix-free"


def _square_shape(shape) -> Tuple[int, int]:
    shape = tuple(int(s) for s in shape)
    if len(shape) != 2 or shape[0] != shape[1]:
        raise ValueError(f"operator must be square, got shape {shape}")
    return shape


class LaplacianOperator:
    """Abstract symmetric PSD linear operator over ``R^{|S_k|}``.

    Subclasses fix the native storage ``format`` and implement the
    conversion/reduction primitives; everything else (shape bookkeeping,
    ``__matmul__`` sugar, default materialised reductions) lives here.
    """

    #: One of :data:`OPERATOR_FORMATS`; the operator's *native* storage.
    format: str = "abstract"

    def __init__(self, shape: Tuple[int, int]):
        self._shape = _square_shape(shape)

    # -- geometry ---------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def dim(self) -> int:
        """``|S_k|`` — the unpadded Laplacian dimension."""
        return self._shape[0]

    # -- primitives (subclass responsibility) ------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def to_dense(self) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def to_sparse(self) -> "_sparse.csr_matrix":
        return _sparse.csr_matrix(self.to_dense())

    def fingerprint(self) -> Optional[bytes]:
        """Content hash for cache keying; ``None`` means uncacheable."""
        return None

    # -- derived reductions -------------------------------------------------------
    def gershgorin_bound(self) -> float:
        """Upper bound on ``λ_max`` (Eq. 7's ``λ̃_max``), format-appropriate."""
        return _dense_gershgorin(self.to_dense())

    def trace(self) -> float:
        return float(np.trace(self.to_dense()))

    def frobenius_norm_squared(self) -> float:
        """``‖Δ‖_F² = tr Δ²`` for symmetric operators — the second moment."""
        dense = self.to_dense()
        return float(np.square(dense).sum())

    # -- sugar --------------------------------------------------------------------
    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self.matvec(x)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.dim}x{self.dim} format={self.format!r}>"


class DenseOperator(LaplacianOperator):
    """A dense ``ndarray``-backed Laplacian operator."""

    format = DENSE

    def __init__(self, matrix: np.ndarray):
        arr = np.ascontiguousarray(np.asarray(matrix, dtype=float))
        super().__init__(arr.shape)
        self._matrix = arr
        self._fingerprint: Optional[bytes] = None

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self._matrix @ np.asarray(x, dtype=float)

    def to_dense(self) -> np.ndarray:
        return self._matrix

    def to_sparse(self) -> "_sparse.csr_matrix":
        return _sparse.csr_matrix(self._matrix)

    def fingerprint(self) -> bytes:
        # Memoised: operators are treated as immutable once constructed, so a
        # reused operator (e.g. across unchanged streaming windows) hashes its
        # matrix exactly once and SpectrumCache lookups become O(1).
        if self._fingerprint is None:
            digest = hashlib.sha1(self._matrix.tobytes()).digest()
            self._fingerprint = b"dense" + self.dim.to_bytes(8, "little") + digest
        return self._fingerprint

    def gershgorin_bound(self) -> float:
        return _dense_gershgorin(self._matrix)

    def trace(self) -> float:
        return float(np.trace(self._matrix))

    def frobenius_norm_squared(self) -> float:
        return float(np.square(self._matrix).sum())


class SparseOperator(LaplacianOperator):
    """A CSR-backed Laplacian operator — reductions never densify."""

    format = SPARSE

    def __init__(self, matrix: "_sparse.spmatrix"):
        if not _sparse.issparse(matrix):
            raise TypeError("SparseOperator expects a scipy.sparse matrix")
        csr = matrix.tocsr().astype(float, copy=False)
        super().__init__(csr.shape)
        self._matrix = csr
        self._fingerprint: Optional[bytes] = None

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self._matrix @ np.asarray(x, dtype=float)

    def to_dense(self) -> np.ndarray:
        return np.ascontiguousarray(np.asarray(self._matrix.todense(), dtype=float))

    def to_sparse(self) -> "_sparse.csr_matrix":
        return self._matrix

    def fingerprint(self) -> bytes:
        # Memoised under the same immutability assumption as DenseOperator.
        if self._fingerprint is not None:
            return self._fingerprint
        # Canonicalise so that equal matrices with different internal layouts
        # (unsorted indices, explicit duplicates/zeros) hash identically.
        canonical = self._matrix.copy()
        canonical.sum_duplicates()
        canonical.eliminate_zeros()
        canonical.sort_indices()
        h = hashlib.sha1()
        h.update(np.ascontiguousarray(canonical.data, dtype=float).tobytes())
        h.update(np.ascontiguousarray(canonical.indices, dtype=np.int64).tobytes())
        h.update(np.ascontiguousarray(canonical.indptr, dtype=np.int64).tobytes())
        self._fingerprint = b"sparse" + self.dim.to_bytes(8, "little") + h.digest()
        return self._fingerprint

    def gershgorin_bound(self) -> float:
        if self.dim == 0:
            return 0.0
        diag = np.asarray(self._matrix.diagonal(), dtype=float)
        row_abs = np.asarray(np.abs(self._matrix).sum(axis=1)).ravel()
        return max(float(np.max(diag + row_abs - np.abs(diag))), 0.0)

    def trace(self) -> float:
        return float(np.asarray(self._matrix.diagonal(), dtype=float).sum())

    def frobenius_norm_squared(self) -> float:
        return float(np.square(self._matrix.data).sum())


class MatrixFreeOperator(LaplacianOperator):
    """A Laplacian given only through its action ``x ↦ Δ_k x``.

    Parameters
    ----------
    matvec:
        The action of the operator on a length-``n`` vector.
    shape:
        ``(n, n)``.
    fingerprint:
        Optional content tag (bytes) for cache keying.  Matrix-free operators
        have no inspectable entries, so the *caller* must vouch for identity;
        without a tag the operator is treated as uncacheable.
    gershgorin:
        Optional precomputed ``λ̃_max``; when omitted the bound is computed by
        materialising (``dim`` matvecs) on first use.
    trace, frobenius_norm_squared:
        Optional precomputed moments, same rationale.
    """

    format = MATRIX_FREE

    def __init__(
        self,
        matvec: Callable[[np.ndarray], np.ndarray],
        shape: Tuple[int, int],
        fingerprint: Optional[bytes] = None,
        gershgorin: Optional[float] = None,
        trace: Optional[float] = None,
        frobenius_norm_squared: Optional[float] = None,
    ):
        super().__init__(shape)
        self._matvec = matvec
        self._fingerprint = fingerprint
        self._gershgorin = gershgorin
        self._trace = trace
        self._frobenius2 = frobenius_norm_squared
        self._dense: Optional[np.ndarray] = None

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(self._matvec(np.asarray(x, dtype=float)), dtype=float)

    def to_dense(self) -> np.ndarray:
        """Materialise by applying ``matvec`` to the identity columns (cached)."""
        if self._dense is None:
            n = self.dim
            columns = np.empty((n, n), dtype=float)
            eye = np.eye(n)
            for j in range(n):
                columns[:, j] = self.matvec(eye[:, j])
            self._dense = np.ascontiguousarray(columns)
        return self._dense

    def fingerprint(self) -> Optional[bytes]:
        if self._fingerprint is None:
            return None
        return b"matfree" + self.dim.to_bytes(8, "little") + self._fingerprint

    def gershgorin_bound(self) -> float:
        if self._gershgorin is None:
            self._gershgorin = _dense_gershgorin(self.to_dense())
        return float(self._gershgorin)

    def trace(self) -> float:
        if self._trace is None:
            self._trace = float(np.trace(self.to_dense()))
        return float(self._trace)

    def frobenius_norm_squared(self) -> float:
        if self._frobenius2 is None:
            self._frobenius2 = float(np.square(self.to_dense()).sum())
        return float(self._frobenius2)


def as_operator(laplacian) -> LaplacianOperator:
    """Coerce a matrix-ish object into a :class:`LaplacianOperator`.

    Accepts an existing operator (returned unchanged), a ``scipy.sparse``
    matrix (wrapped as :class:`SparseOperator`) or anything array-like
    (wrapped as :class:`DenseOperator`).
    """
    if isinstance(laplacian, LaplacianOperator):
        return laplacian
    if _sparse.issparse(laplacian):
        return SparseOperator(laplacian)
    return DenseOperator(laplacian)
