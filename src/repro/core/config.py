"""Configuration object for the QTDA estimator.

Collects the knobs the paper varies in its experiments — number of precision
qubits, number of shots, the spectral-scaling constant ``δ`` — plus the
implementation choices this library adds (simulation backend, padding mode,
Trotter parameters, optional noise).

The ``backend`` field is validated against the pluggable backend registry
(:mod:`repro.core.backends`), so any backend registered with
:func:`repro.core.backends.register_backend` — built-in or third-party —
is immediately usable from a config.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Optional

import numpy as np

from repro.core.backends import available_backends
from repro.core.backends.statevector import CIRCUIT_ROUTES
from repro.quantum.noise import NOISE_CHANNELS, NoiseModel
from repro.utils.validation import check_integer, check_positive_integer, check_probability

#: Allowed padding modes (Eq. 7 identity padding vs the naive zero padding).
PADDING_MODES = ("identity", "zero")

#: Circuit-execution engine choices for the faithful Fig. 6 backends
#: (``statevector``/``trotter``/``noisy-density``): ``"auto"`` plus the
#: concrete routes, derived from the route module's single source of truth
#: (:data:`repro.core.backends.statevector.CIRCUIT_ROUTES`); see
#: :func:`repro.core.backends.statevector.resolve_circuit_route` and
#: DESIGN.md §11.
CIRCUIT_ENGINES = ("auto",) + CIRCUIT_ROUTES


@dataclass
class QTDAConfig:
    """All tunables of the QPE Betti-number estimator.

    Attributes
    ----------
    precision_qubits:
        Number of QPE precision qubits ``t`` (the paper sweeps 1–10).
    shots:
        Number of circuit repetitions ``α``.  ``None`` means "infinite shots":
        the exact outcome probability ``p(0)`` is used directly.
    delta:
        The spectral scaling constant ``δ`` of Eq. 9, "slightly less than
        2π".  The default keeps a 10 % margin (δ = 0.9·2π ≈ 5.65, comparable
        to the worked example's δ = 6): if δ is pushed too close to 2π, the
        largest eigenvalue maps to a phase just below 1, which QPE cannot
        distinguish from phase 0 (phases are periodic), and the top of the
        spectrum leaks into the Betti count.
    backend:
        Name of a registered estimation backend (see
        :func:`repro.core.backends.available_backends`; the built-ins are
        ``"exact"``, ``"sparse-exact"``, ``"statevector"``, ``"trotter"``
        and ``"noisy-density"``).
    padding:
        ``"identity"`` for the paper's λ̃_max/2-identity padding (Eq. 7) or
        ``"zero"`` for the naive zero padding it argues against.
    trotter_steps, trotter_order:
        Product-formula parameters for the ``"trotter"`` backend.
    circuit_engine:
        How the circuit backends execute the mixed-state Fig. 6 circuit
        (DESIGN.md §11):

        * ``"ensemble"`` — batched statevector route: evolve the ``2^q``
          basis states as one ``(2^(t+q), B)`` array (chunked to a memory
          budget, gates fused) and average the readout; no auxiliary qubits,
          no density matrix.
        * ``"purified"`` — Fig. 2 purification, statevector on ``t + 2q``
          qubits (legacy, bit-identity-pinned).
        * ``"density"`` — density-matrix evolution of ``|0><0| ⊗ I/2^q`` on
          ``t + q`` qubits (legacy, bit-identity-pinned; the only route that
          can simulate noise channels).
        * ``"auto"`` (default) — ``density`` when a noise model is in
          effect, ``ensemble`` otherwise.

        All three noise-free routes agree to better than ``1e-10``; only the
        legacy two are pinned bit-exactly across releases.
    use_purification:
        Legacy route selector, superseded by ``circuit_engine`` (an explicit
        ``circuit_engine`` always wins; ``"auto"`` no longer consults this
        flag).  Retained for wire-format compatibility and for direct
        :func:`repro.core.qtda_circuit.qtda_circuit` callers.
    noise_channel, noise_strength:
        Declarative noise parametrisation consumed by the ``noisy-density``
        backend (and honoured by the other circuit backends): a channel name
        from :data:`repro.quantum.noise.NOISE_CHANNELS` and its per-gate
        error probability.  Unlike ``noise_model`` these fields are plain
        data, so configs stay serialisable (:meth:`as_dict`).
    noise_model:
        Optional explicit noise model object; takes precedence over
        ``noise_channel``/``noise_strength`` when set (only honoured by
        circuit backends).
    trace_deflation_rank:
        Hutch++-style variance reduction for the ``stochastic-trace``
        backend: when positive, a rank-``r`` near-kernel subspace is resolved
        by Lanczos first and handled *exactly*, and the Hutchinson probes
        only estimate the deflated remainder — shrinking ``betti_std`` at an
        equal matvec budget (the deflation steps are paid for by shortening
        the per-probe Lanczos runs).  ``0`` (default) keeps plain Hutchinson
        probing.  Ignored by deterministic backends.
    seed:
        RNG seed for shot sampling.
    """

    precision_qubits: int = 3
    shots: Optional[int] = 1000
    delta: float = 2.0 * np.pi * 0.9
    backend: str = "exact"
    padding: str = "identity"
    trotter_steps: int = 4
    trotter_order: int = 1
    circuit_engine: str = "auto"
    use_purification: bool = True
    noise_channel: Optional[str] = None
    noise_strength: float = 0.0
    noise_model: Optional[NoiseModel] = None
    trace_deflation_rank: int = 0
    seed: Optional[int] = None
    zero_eigenvalue_atol: float = 1e-8

    def __post_init__(self):
        self.precision_qubits = check_positive_integer(self.precision_qubits, "precision_qubits")
        if self.shots is not None:
            self.shots = check_positive_integer(self.shots, "shots")
        self.delta = float(self.delta)
        if not 0.0 < self.delta < 2.0 * np.pi:
            raise ValueError(f"delta must lie in (0, 2π), got {self.delta}")
        if self.backend not in available_backends():
            raise ValueError(
                f"backend must be one of {available_backends()}, got {self.backend!r}"
            )
        if self.padding not in PADDING_MODES:
            raise ValueError(f"padding must be one of {PADDING_MODES}, got {self.padding!r}")
        self.trotter_steps = check_positive_integer(self.trotter_steps, "trotter_steps")
        self.trotter_order = check_integer(self.trotter_order, "trotter_order", minimum=1, maximum=2)
        if self.circuit_engine not in CIRCUIT_ENGINES:
            raise ValueError(
                f"circuit_engine must be one of {CIRCUIT_ENGINES}, got {self.circuit_engine!r}"
            )
        if self.noise_channel is not None and self.noise_channel not in NOISE_CHANNELS:
            raise ValueError(
                f"noise_channel must be one of {NOISE_CHANNELS}, got {self.noise_channel!r}"
            )
        self.trace_deflation_rank = check_integer(
            self.trace_deflation_rank, "trace_deflation_rank", minimum=0
        )
        self.noise_strength = check_probability(self.noise_strength, "noise_strength")
        if self.noise_model is not None and not isinstance(self.noise_model, NoiseModel):
            raise TypeError("noise_model must be a repro.quantum.NoiseModel or None")
        if self.circuit_engine in ("ensemble", "purified") and (
            self.noise_model is not None or self.noise_channel is not None
        ):
            # Pure-state routes cannot express Kraus channels; a config
            # claiming both would silently drop the noise.
            raise ValueError(
                f"circuit_engine={self.circuit_engine!r} cannot simulate noise "
                "channels; use circuit_engine='density' (or 'auto')"
            )
        if self.noise_strength > 0 and self.noise_channel is None and self.noise_model is None:
            # Without this check the strength would be silently ignored and a
            # run claiming noise would report noiseless results.
            raise ValueError(
                f"noise_strength={self.noise_strength} requires a noise_channel "
                f"(one of {NOISE_CHANNELS}) or an explicit noise_model"
            )

    def resolved_noise_model(self) -> Optional[NoiseModel]:
        """The effective noise model of this config.

        An explicit ``noise_model`` object wins; otherwise one is built from
        ``noise_channel``/``noise_strength``; ``None`` means noiseless.
        """
        if self.noise_model is not None:
            return self.noise_model
        if self.noise_channel is None:
            return None
        return NoiseModel.from_channel(self.noise_channel, self.noise_strength)

    def replace(self, **overrides) -> "QTDAConfig":
        """Copy with selected fields overridden (dataclasses.replace wrapper)."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **overrides)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dictionary view, round-trippable through :meth:`from_dict`.

        Raises when an explicit ``noise_model`` object is attached — Kraus
        operators are not plain data; use ``noise_channel``/``noise_strength``
        for serialisable noise configuration.
        """
        if self.noise_model is not None:
            raise ValueError(
                "QTDAConfig with an explicit noise_model object is not serialisable; "
                "use noise_channel/noise_strength instead"
            )
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        del data["noise_model"]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "QTDAConfig":
        """Inverse of :meth:`as_dict` (re-runs all field validation)."""
        return cls(**data)
