"""Configuration object for the QTDA estimator.

Collects the knobs the paper varies in its experiments — number of precision
qubits, number of shots, the spectral-scaling constant ``δ`` — plus the
implementation choices this library adds (simulation backend, padding mode,
Trotter parameters, optional noise).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.quantum.noise import NoiseModel
from repro.utils.validation import check_integer, check_positive_integer

#: Allowed simulation backends (see DESIGN.md §5 for their semantics).
BACKENDS = ("exact", "statevector", "trotter")

#: Allowed padding modes (Eq. 7 identity padding vs the naive zero padding).
PADDING_MODES = ("identity", "zero")


@dataclass
class QTDAConfig:
    """All tunables of the QPE Betti-number estimator.

    Attributes
    ----------
    precision_qubits:
        Number of QPE precision qubits ``t`` (the paper sweeps 1–10).
    shots:
        Number of circuit repetitions ``α``.  ``None`` means "infinite shots":
        the exact outcome probability ``p(0)`` is used directly.
    delta:
        The spectral scaling constant ``δ`` of Eq. 9, "slightly less than
        2π".  The default keeps a 10 % margin (δ = 0.9·2π ≈ 5.65, comparable
        to the worked example's δ = 6): if δ is pushed too close to 2π, the
        largest eigenvalue maps to a phase just below 1, which QPE cannot
        distinguish from phase 0 (phases are periodic), and the top of the
        spectrum leaks into the Betti count.
    backend:
        ``"exact"`` (analytical QPE distribution), ``"statevector"`` (explicit
        circuit with exact controlled powers of ``U``) or ``"trotter"``
        (explicit circuit with ``U`` synthesised from the Pauli
        decomposition, Fig. 7).
    padding:
        ``"identity"`` for the paper's λ̃_max/2-identity padding (Eq. 7) or
        ``"zero"`` for the naive zero padding it argues against.
    trotter_steps, trotter_order:
        Product-formula parameters for the ``"trotter"`` backend.
    use_purification:
        For circuit backends, prepare the maximally mixed state with
        auxiliary qubits and Bell pairs (Fig. 2).  When false, the mixed
        state is simulated by averaging over computational basis states,
        which needs no auxiliary qubits.
    noise_model:
        Optional noise model applied by the density-matrix simulator
        (only honoured by circuit backends).
    seed:
        RNG seed for shot sampling.
    """

    precision_qubits: int = 3
    shots: Optional[int] = 1000
    delta: float = 2.0 * np.pi * 0.9
    backend: str = "exact"
    padding: str = "identity"
    trotter_steps: int = 4
    trotter_order: int = 1
    use_purification: bool = True
    noise_model: Optional[NoiseModel] = None
    seed: Optional[int] = None
    zero_eigenvalue_atol: float = 1e-8

    def __post_init__(self):
        self.precision_qubits = check_positive_integer(self.precision_qubits, "precision_qubits")
        if self.shots is not None:
            self.shots = check_positive_integer(self.shots, "shots")
        self.delta = float(self.delta)
        if not 0.0 < self.delta < 2.0 * np.pi:
            raise ValueError(f"delta must lie in (0, 2π), got {self.delta}")
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {self.backend!r}")
        if self.padding not in PADDING_MODES:
            raise ValueError(f"padding must be one of {PADDING_MODES}, got {self.padding!r}")
        self.trotter_steps = check_positive_integer(self.trotter_steps, "trotter_steps")
        self.trotter_order = check_integer(self.trotter_order, "trotter_order", minimum=1, maximum=2)
        if self.noise_model is not None and not isinstance(self.noise_model, NoiseModel):
            raise TypeError("noise_model must be a repro.quantum.NoiseModel or None")

    def replace(self, **overrides) -> "QTDAConfig":
        """Copy with selected fields overridden (dataclasses.replace wrapper)."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **overrides)
