"""Configuration object for the QTDA estimator.

Collects the knobs the paper varies in its experiments — number of precision
qubits, number of shots, the spectral-scaling constant ``δ`` — plus the
implementation choices this library adds (simulation backend, padding mode,
Trotter parameters, optional noise).

The ``backend`` field is validated against the pluggable backend registry
(:mod:`repro.core.backends`), so any backend registered with
:func:`repro.core.backends.register_backend` — built-in or third-party —
is immediately usable from a config.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Optional

import numpy as np

from repro.core.backends import available_backends
from repro.core.backends.statevector import CIRCUIT_ROUTES
from repro.quantum.sharding import SHARD_BACKENDS
from repro.quantum.channels import (
    TWO_QUBIT_NOISE_CHANNELS,
    NoiseSpec,
    _normalise_gate_strengths,
)
from repro.quantum.noise import NOISE_CHANNELS, NoiseModel
from repro.utils.validation import check_integer, check_positive_integer, check_probability

#: Allowed padding modes (Eq. 7 identity padding vs the naive zero padding).
PADDING_MODES = ("identity", "zero")

#: Circuit-execution engine choices for the faithful Fig. 6 backends
#: (``statevector``/``trotter``/``noisy-density``): ``"auto"`` plus the
#: concrete routes, derived from the route module's single source of truth
#: (:data:`repro.core.backends.statevector.CIRCUIT_ROUTES`); see
#: :func:`repro.core.backends.statevector.resolve_circuit_route` and
#: DESIGN.md §11.
CIRCUIT_ENGINES = ("auto",) + CIRCUIT_ROUTES


@dataclass
class QTDAConfig:
    """All tunables of the QPE Betti-number estimator.

    Attributes
    ----------
    precision_qubits:
        Number of QPE precision qubits ``t`` (the paper sweeps 1–10).
    shots:
        Number of circuit repetitions ``α``.  ``None`` means "infinite shots":
        the exact outcome probability ``p(0)`` is used directly.
    delta:
        The spectral scaling constant ``δ`` of Eq. 9, "slightly less than
        2π".  The default keeps a 10 % margin (δ = 0.9·2π ≈ 5.65, comparable
        to the worked example's δ = 6): if δ is pushed too close to 2π, the
        largest eigenvalue maps to a phase just below 1, which QPE cannot
        distinguish from phase 0 (phases are periodic), and the top of the
        spectrum leaks into the Betti count.
    backend:
        Name of a registered estimation backend (see
        :func:`repro.core.backends.available_backends`; the built-ins are
        ``"exact"``, ``"sparse-exact"``, ``"statevector"``, ``"trotter"``
        and ``"noisy-density"``).
    padding:
        ``"identity"`` for the paper's λ̃_max/2-identity padding (Eq. 7) or
        ``"zero"`` for the naive zero padding it argues against.
    trotter_steps, trotter_order:
        Product-formula parameters for the ``"trotter"`` backend.
    circuit_engine:
        How the circuit backends execute the mixed-state Fig. 6 circuit
        (DESIGN.md §11):

        * ``"ensemble"`` — batched statevector route: evolve the ``2^q``
          basis states as one ``(2^(t+q), B)`` array (chunked to a memory
          budget, gates fused) and average the readout; no auxiliary qubits,
          no density matrix.
        * ``"ptm"`` — the *exact* noise route (DESIGN.md §16): gates and
          their attached channels are lowered to Pauli-transfer matrices,
          fused into single superoperators, and a real ``4^(t+q)`` Pauli
          vector evolves through the fused program.  Deterministic; agrees
          with ``density`` to floating point at gate-fusion speed.
        * ``"trajectory"`` — the noisy counterpart of ``ensemble``:
          stochastic Kraus-branch trajectories on the same ``(2^(t+q), B)``
          array, one sampled branch per ensemble member after each gate,
          repeated ``n_trajectories`` times (mean converges to the density
          result; spread becomes ``p_zero_std``).
        * ``"purified"`` — Fig. 2 purification, statevector on ``t + 2q``
          qubits (legacy, bit-identity-pinned).
        * ``"density"`` — density-matrix evolution of ``|0><0| ⊗ I/2^q`` on
          ``t + q`` qubits (legacy, bit-identity-pinned; exact Kraus
          contraction for noise).
        * ``"auto"`` (default) — for declarative gate noise, ``ptm`` while
          ``t + q`` stays within
          :data:`repro.core.backends.statevector.PTM_AUTO_QUBIT_THRESHOLD`
          and ``trajectory`` above it; ``density`` for explicit
          ``noise_model`` objects the spec cannot express; ``ensemble``
          otherwise.

        All noise-free routes agree to better than ``1e-10``; only the
        legacy two are pinned bit-exactly across releases.
    use_purification:
        Legacy route selector, superseded by ``circuit_engine`` (an explicit
        ``circuit_engine`` always wins; ``"auto"`` no longer consults this
        flag).  Retained for wire-format compatibility and for direct
        :func:`repro.core.qtda_circuit.qtda_circuit` callers.
    fuse_purified:
        Opt-in gate fusion for the legacy ``purified`` route (the fusion
        pass of :mod:`repro.quantum.fusion` run inside the single-state
        simulator).  Off by default: fusion changes floating-point
        association, and the purified route is bit-identity-pinned.
    noise_channel, noise_strength:
        Declarative noise parametrisation consumed by the ``noisy-density``
        backend (and honoured by the other circuit backends): a channel name
        from :data:`repro.quantum.noise.NOISE_CHANNELS` and its per-gate
        error probability.  Unlike ``noise_model`` these fields are plain
        data, so configs stay serialisable (:meth:`as_dict`).
    noise_gate_strengths:
        Optional per-gate-class strength overrides for ``noise_channel``,
        keyed by gate name (``"H"``, ``"CNOT"``, ``"CU"``, ...).  Accepts a
        mapping or a tuple of ``(name, strength)`` pairs (the wire layer
        freezes mappings into the latter); normalised to a plain dict.
    noise_two_qubit_channel, noise_two_qubit_strength:
        Optional correlated two-qubit channel (one of
        :data:`repro.quantum.channels.TWO_QUBIT_NOISE_CHANNELS`) injected
        after every two-qubit gate, modelling the dominant entangling-gate
        errors of real devices.
    readout_error:
        Symmetric measurement bit-flip probability applied to the readout
        marginal.  Honoured by every circuit route (it is a classical
        post-processing of the distribution), so it composes with the
        noise-free ``ensemble`` route too.
    n_trajectories:
        Number of stochastic Kraus-trajectory repetitions for the
        ``trajectory`` route; their spread surfaces as
        ``p_zero_std``/``betti_std``.
    noise_model:
        Optional explicit noise model object; takes precedence over
        ``noise_channel``/``noise_strength`` when set (only honoured by
        circuit backends).
    shards:
        Number of shards the circuit engine's batch axis (ensemble route) or
        trajectory axis (trajectory route) is split across
        (:class:`repro.quantum.sharding.ShardedExecutor`).  ``1`` (default)
        keeps the single-executor path; sharded results are bit-identical to
        unsharded ones for the same seed, so this is purely a throughput
        knob.  Only the ``ensemble``/``trajectory`` routes shard; the legacy
        pinned routes ignore it.
    shard_backend:
        Worker flavour for ``shards > 1`` — one of
        :data:`repro.quantum.sharding.SHARD_BACKENDS`:
        ``"process"`` (default; spawn-context CPU processes), ``"thread"``,
        ``"serial"`` (in-process, the determinism reference) or ``"device"``
        (one CuPy device context per shard; requires cupy + CUDA hardware).
    devices:
        CUDA device ordinals for the ``"device"`` shard backend, assigned to
        shards round-robin.  Setting ``devices`` while ``shard_backend`` is
        the default ``"process"`` selects ``"device"`` automatically;
        combining it with an explicit ``"serial"``/``"thread"`` backend is an
        error.
    trace_deflation_rank:
        Hutch++-style variance reduction for the ``stochastic-trace``
        backend: when positive, a rank-``r`` near-kernel subspace is resolved
        by Lanczos first and handled *exactly*, and the Hutchinson probes
        only estimate the deflated remainder — shrinking ``betti_std`` at an
        equal matvec budget (the deflation steps are paid for by shortening
        the per-probe Lanczos runs).  ``0`` (default) keeps plain Hutchinson
        probing.  Ignored by deterministic backends.
    seed:
        RNG seed for shot sampling.
    """

    precision_qubits: int = 3
    shots: Optional[int] = 1000
    delta: float = 2.0 * np.pi * 0.9
    backend: str = "exact"
    padding: str = "identity"
    trotter_steps: int = 4
    trotter_order: int = 1
    circuit_engine: str = "auto"
    use_purification: bool = True
    fuse_purified: bool = False
    noise_channel: Optional[str] = None
    noise_strength: float = 0.0
    noise_gate_strengths: Optional[object] = None
    noise_two_qubit_channel: Optional[str] = None
    noise_two_qubit_strength: float = 0.0
    readout_error: float = 0.0
    n_trajectories: int = 8
    shards: int = 1
    shard_backend: str = "process"
    devices: Optional[tuple] = None
    noise_model: Optional[NoiseModel] = None
    trace_deflation_rank: int = 0
    seed: Optional[int] = None
    zero_eigenvalue_atol: float = 1e-8

    def __post_init__(self):
        self.precision_qubits = check_positive_integer(self.precision_qubits, "precision_qubits")
        if self.shots is not None:
            self.shots = check_positive_integer(self.shots, "shots")
        self.delta = float(self.delta)
        if not 0.0 < self.delta < 2.0 * np.pi:
            raise ValueError(f"delta must lie in (0, 2π), got {self.delta}")
        if self.backend not in available_backends():
            raise ValueError(
                f"backend must be one of {available_backends()}, got {self.backend!r}"
            )
        if self.padding not in PADDING_MODES:
            raise ValueError(f"padding must be one of {PADDING_MODES}, got {self.padding!r}")
        self.trotter_steps = check_positive_integer(self.trotter_steps, "trotter_steps")
        self.trotter_order = check_integer(self.trotter_order, "trotter_order", minimum=1, maximum=2)
        if self.circuit_engine not in CIRCUIT_ENGINES:
            raise ValueError(
                f"circuit_engine must be one of {CIRCUIT_ENGINES}, got {self.circuit_engine!r}"
            )
        if self.noise_channel is not None and self.noise_channel not in NOISE_CHANNELS:
            raise ValueError(
                f"noise_channel must be one of {NOISE_CHANNELS}, got {self.noise_channel!r}"
            )
        self.trace_deflation_rank = check_integer(
            self.trace_deflation_rank, "trace_deflation_rank", minimum=0
        )
        self.noise_strength = check_probability(self.noise_strength, "noise_strength")
        self.use_purification = bool(self.use_purification)
        self.fuse_purified = bool(self.fuse_purified)
        self.noise_gate_strengths = _normalise_gate_strengths(self.noise_gate_strengths)
        if (
            self.noise_two_qubit_channel is not None
            and self.noise_two_qubit_channel not in TWO_QUBIT_NOISE_CHANNELS
        ):
            raise ValueError(
                f"noise_two_qubit_channel must be one of {TWO_QUBIT_NOISE_CHANNELS}, "
                f"got {self.noise_two_qubit_channel!r}"
            )
        self.noise_two_qubit_strength = check_probability(
            self.noise_two_qubit_strength, "noise_two_qubit_strength"
        )
        self.readout_error = check_probability(self.readout_error, "readout_error")
        self.n_trajectories = check_positive_integer(self.n_trajectories, "n_trajectories")
        self.shards = check_positive_integer(self.shards, "shards")
        if self.shard_backend not in SHARD_BACKENDS:
            raise ValueError(
                f"shard_backend must be one of {SHARD_BACKENDS}, got {self.shard_backend!r}"
            )
        if self.devices is not None:
            self.devices = tuple(
                check_integer(d, "devices", minimum=0) for d in self.devices
            )
            if not self.devices:
                self.devices = None
        if self.devices is not None:
            if self.shard_backend == "process":
                # devices are meaningless on CPU workers: naming them selects
                # the device backend (process is only the un-asked-for default).
                self.shard_backend = "device"
            elif self.shard_backend != "device":
                raise ValueError(
                    f"devices={self.devices} requires shard_backend='device', "
                    f"got {self.shard_backend!r}"
                )
        if self.noise_gate_strengths and self.noise_channel is None:
            raise ValueError("noise_gate_strengths requires a noise_channel")
        if self.noise_two_qubit_strength > 0 and self.noise_two_qubit_channel is None:
            raise ValueError(
                f"noise_two_qubit_strength={self.noise_two_qubit_strength} requires "
                "a noise_two_qubit_channel"
            )
        if self.noise_model is not None and not isinstance(self.noise_model, NoiseModel):
            raise TypeError("noise_model must be a repro.quantum.NoiseModel or None")
        if self.circuit_engine in ("ensemble", "purified") and (
            self.noise_model is not None
            or self.noise_channel is not None
            or self.noise_two_qubit_channel is not None
        ):
            # Pure-state routes cannot express Kraus channels; a config
            # claiming both would silently drop the noise.  (readout_error is
            # classical post-processing and composes with every route.)
            raise ValueError(
                f"circuit_engine={self.circuit_engine!r} cannot simulate noise "
                "channels; use circuit_engine='ptm', 'trajectory', 'density' (or 'auto')"
            )
        if self.noise_strength > 0 and self.noise_channel is None and self.noise_model is None:
            # Without this check the strength would be silently ignored and a
            # run claiming noise would report noiseless results.
            raise ValueError(
                f"noise_strength={self.noise_strength} requires a noise_channel "
                f"(one of {NOISE_CHANNELS}) or an explicit noise_model"
            )

    def _has_extended_noise_fields(self) -> bool:
        """Whether any beyond-legacy gate-noise field is set (per-gate-class
        overrides or a correlated two-qubit channel)."""
        return bool(self.noise_gate_strengths) or self.noise_two_qubit_channel is not None

    def resolved_noise_spec(self) -> NoiseSpec:
        """The declarative noise description of this config as a :class:`NoiseSpec`.

        Covers the plain-data fields only; an explicit ``noise_model`` object
        (which may carry hand-built Kraus operators no spec can express) is
        the caller's to inspect via :meth:`resolved_noise_model`.
        """
        return NoiseSpec(
            channel=self.noise_channel,
            strength=self.noise_strength,
            gate_strengths=self.noise_gate_strengths,
            two_qubit_channel=self.noise_two_qubit_channel,
            two_qubit_strength=self.noise_two_qubit_strength,
            readout_error=self.readout_error,
        )

    def resolved_noise_model(self) -> Optional[NoiseModel]:
        """The effective noise model of this config.

        An explicit ``noise_model`` object wins; otherwise one is built from
        the declarative fields (the legacy single-channel adapter when only
        ``noise_channel``/``noise_strength`` are set — keeping the density
        route bit-identical — or a spec-driven adapter when per-gate-class
        strengths or a two-qubit channel are configured); ``None`` means no
        gate noise.
        """
        if self.noise_model is not None:
            return self.noise_model
        if self._has_extended_noise_fields():
            return NoiseModel.from_spec(self.resolved_noise_spec())
        if self.noise_channel is None:
            return None
        return NoiseModel.from_channel(self.noise_channel, self.noise_strength)

    def replace(self, **overrides) -> "QTDAConfig":
        """Copy with selected fields overridden (dataclasses.replace wrapper)."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **overrides)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dictionary view, round-trippable through :meth:`from_dict`.

        Raises when an explicit ``noise_model`` object is attached — Kraus
        operators are not plain data; use ``noise_channel``/``noise_strength``
        for serialisable noise configuration.
        """
        if self.noise_model is not None:
            raise ValueError(
                "QTDAConfig with an explicit noise_model object is not serialisable; "
                "use noise_channel/noise_strength instead"
            )
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        del data["noise_model"]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "QTDAConfig":
        """Inverse of :meth:`as_dict` (re-runs all field validation)."""
        return cls(**data)
