"""Batched Betti-feature extraction (the Section 5 experiments' hot path).

The paper's experiments extract ``{β̃_0, β̃_1}`` features from hundreds of
windows/rows; :class:`BatchFeatureEngine` fans those samples across a
``concurrent.futures`` worker pool and funnels every exact-backend estimate
through three reuse layers (DESIGN.md §7):

1. *distance reuse* — each sample's distance matrix is computed once and
   shared across every grouping scale ε of a sweep;
2. *vectorised complexes* — for the paper's ``max_complex_dimension <= 2``
   setting, Rips complexes and Laplacians are built as integer arrays
   (:func:`repro.tda.rips.flag_complex_arrays`) instead of per-simplex Python
   objects, producing bit-identical matrices;
3. *spectrum cache* — Laplacian eigendecompositions are cached
   (:class:`repro.core.hamiltonian.SpectrumCache`), so revisiting a Laplacian
   across ε values, precision settings or repeated windows is free.

Determinism: sample ``i`` always runs with the derived seed
``derive_seed(config.estimator.seed, i)``, so the ``serial``, ``threads`` and
``processes`` backends return bit-identical feature matrices for a fixed
seed, regardless of worker count or chunking.

Estimator backends are orthogonal to these *execution* backends: the engine
builds a :class:`QTDABettiEstimator` per sample from ``config.estimator``, so
any backend registered in :mod:`repro.core.backends` (``exact``,
``sparse-exact``, ``stochastic-trace``, ``noisy-density``, ...) passes
through unchanged.  The engine additionally *negotiates the operator format*
with the configured backend (DESIGN.md §9): sparse-capable backends receive
flag-array Laplacians built directly as CSR matrices, so large-window sweeps
get the sparse fast path end to end instead of a dense detour.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.estimator import QTDABettiEstimator
from repro.core.hamiltonian import SpectrumCache, laplacian_spectrum_info
from repro.core.pipeline import PipelineConfig, apply_pipeline_overrides
from repro.tda.betti import betti_number
from repro.tda.distances import pairwise_distances
from repro.tda.laplacian import (
    combinatorial_laplacian_operator,
    laplacian_operator_from_flag_arrays,
)
from repro.tda.incremental import IncrementalFlagComplex, SlidingDistanceMatrix
from repro.tda.rips import FlagComplexArrays, RipsComplex, flag_complex_arrays
from repro.tda.takens import TakensEmbedding
from repro.utils.rng import derive_seed
from repro.utils.validation import check_integer

#: Allowed execution backends of the batch engine.
BATCH_BACKENDS = ("serial", "threads", "processes")


@dataclass
class BatchConfig:
    """Execution knobs of :class:`BatchFeatureEngine`.

    Attributes
    ----------
    backend:
        ``"serial"`` (in-process loop, the reference), ``"threads"``
        (``ThreadPoolExecutor`` — NumPy/LAPACK release the GIL on the
        eigendecompositions, so threads already scale) or ``"processes"``
        (``ProcessPoolExecutor`` — full parallelism at pickling cost).
    max_workers:
        Pool size for the parallel backends (default: ``os.cpu_count()``).
    chunk_size:
        Samples per submitted task.  Defaults to ``ceil(n / (4 * workers))``
        so each worker sees a few chunks (load balancing) without per-sample
        dispatch overhead.
    spectrum_cache_size:
        LRU capacity of the per-engine (serial/threads) or per-worker
        (processes) spectrum cache; ``0`` disables caching.
    operator_format:
        Format of the Laplacians handed to the estimator backend: ``None``
        (default) negotiates it from the configured estimator backend's
        ``supported_formats`` (so ``sparse-exact`` / ``stochastic-trace``
        sweeps get sparse operators end to end), or force ``"dense"`` /
        ``"sparse"`` explicitly (the dense-handoff benchmark baseline).
    """

    backend: str = "serial"
    max_workers: Optional[int] = None
    chunk_size: Optional[int] = None
    spectrum_cache_size: int = 1024
    operator_format: Optional[str] = None

    def __post_init__(self):
        if self.backend not in BATCH_BACKENDS:
            raise ValueError(f"backend must be one of {BATCH_BACKENDS}, got {self.backend!r}")
        if self.max_workers is not None:
            self.max_workers = check_integer(self.max_workers, "max_workers", minimum=1)
        if self.chunk_size is not None:
            self.chunk_size = check_integer(self.chunk_size, "chunk_size", minimum=1)
        self.spectrum_cache_size = check_integer(
            self.spectrum_cache_size, "spectrum_cache_size", minimum=0
        )
        if self.operator_format not in (None, "dense", "sparse"):
            raise ValueError(
                f"operator_format must be None, 'dense' or 'sparse', got {self.operator_format!r}"
            )

    def as_dict(self) -> dict:
        """Plain-dictionary view, round-trippable through :meth:`from_dict`."""
        from dataclasses import asdict

        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "BatchConfig":
        """Inverse of :meth:`as_dict` (re-runs all field validation)."""
        return cls(**dict(data))


@dataclass(frozen=True)
class _SampleTask:
    """One point cloud (as a distance matrix) × all requested grouping scales."""

    index: int
    distances: np.ndarray
    epsilons: Tuple[float, ...]
    seed: Optional[int]


def _small_eigenvalues(laplacian: np.ndarray, cache: Optional[SpectrumCache]) -> np.ndarray:
    if cache is not None:
        return cache.spectrum(laplacian)[0]
    return laplacian_spectrum_info(laplacian)[0]


def _negotiate_laplacian_format(config: PipelineConfig, operator_format: Optional[str]) -> str:
    """Negotiated operator format for estimator handoffs (DESIGN.md §9).

    An explicit ``operator_format`` wins; otherwise the configured estimator
    backend's format preference decides.  Classical-only runs
    (``use_quantum=False``) stay dense — their eigenvalue counts densify
    anyway.
    """
    if operator_format is not None:
        return operator_format
    if not config.use_quantum:
        return "dense"
    from repro.core.backends import get_backend, preferred_format

    return preferred_format(get_backend(config.estimator.backend))


def _flag_features(
    arrays: FlagComplexArrays,
    config: PipelineConfig,
    cache: Optional[SpectrumCache],
    estimator: Optional[QTDABettiEstimator],
    compute_exact: bool,
    sparse_handoff: bool,
    operators: Optional[Dict[int, object]] = None,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Feature rows from prepared flag-complex arrays (the fast-path inner loop).

    Shared by the per-sample sweep (:class:`_SampleSweeper`) and the
    incremental window engine (:class:`StreamingFeatureEngine`), so both
    routes run literally the same per-dimension code and stay bit-identical.

    ``operators`` is the streaming engine's reuse hook: a mutable mapping
    ``k -> LaplacianOperator`` whose existing entries are handed to the
    estimator verbatim (their memoised fingerprints keep
    :class:`SpectrumCache` keys stable across windows, so unchanged
    sub-Laplacians skip both the rebuild and the rehash), and whose missing
    entries are built here and stored back.
    """
    dims = config.homology_dimensions
    atol = config.estimator.zero_eigenvalue_atol
    estimated = np.empty(len(dims))
    exact = np.empty(len(dims)) if compute_exact else None
    for f_idx, k in enumerate(dims):
        if arrays.num_simplices(k) == 0:
            estimated[f_idx] = 0.0
            if exact is not None:
                exact[f_idx] = 0.0
            continue
        laplacian = operators.get(k) if operators is not None else None
        if laplacian is None:
            laplacian = laplacian_operator_from_flag_arrays(arrays, k, sparse_format=sparse_handoff)
            if operators is not None:
                operators[k] = laplacian
        exact_value: Optional[float] = None
        if exact is not None:
            eigenvalues = _small_eigenvalues(laplacian, cache)
            exact_value = float(np.count_nonzero(np.abs(eigenvalues) <= atol))
            exact[f_idx] = exact_value
        if estimator is not None:
            estimate = estimator.estimate_from_laplacian(laplacian)
            estimated[f_idx] = float(estimate.betti_estimate)
        else:
            estimated[f_idx] = exact_value if exact_value is not None else 0.0
    return estimated, exact


class _SampleSweeper:
    """Stateful per-sample feature computer: one distance matrix, many ε.

    Holds exactly the state the per-sample ε loop threads through its
    iterations — the sample's estimator (whose RNG advances across calls, so
    finite-shot draws are identical whether the grouping scales arrive in one
    batch or one at a time) and the reusable Rips complex of the generic
    route.  Because the state lives here instead of in loop locals, the
    engine can evaluate a sweep *sample-major* (:func:`_sample_features`, the
    worker-pool unit) or *ε-major* (:meth:`BatchFeatureEngine.iter_sweep`,
    the streaming path) and produce bit-identical features either way.
    """

    def __init__(
        self,
        task: _SampleTask,
        config: PipelineConfig,
        cache: Optional[SpectrumCache],
        want_exact: bool,
        laplacian_format: str = "dense",
    ):
        self.task = task
        self.config = config
        self.cache = cache
        self.compute_exact = want_exact or not config.use_quantum
        self.fast = config.max_complex_dimension <= 2
        self.sparse_handoff = laplacian_format == "sparse"
        self.estimator: Optional[QTDABettiEstimator] = None
        if config.use_quantum:
            self.estimator = QTDABettiEstimator(
                config.estimator.replace(seed=task.seed), spectrum_cache=cache
            )
        self._rips: Optional[RipsComplex] = None

    def features_at(self, epsilon: float) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Feature rows ``(estimated (F,), exact (F,) or None)`` at one ε."""
        config = self.config
        if self.fast:
            arrays = flag_complex_arrays(self.task.distances, epsilon, config.max_complex_dimension)
            return _flag_features(
                arrays, config, self.cache, self.estimator, self.compute_exact, self.sparse_handoff
            )
        # Generic clique route for dimensions above 2; successive ε share
        # the distance matrix via with_epsilon.
        self._rips = (
            RipsComplex.from_distance_matrix(
                self.task.distances, epsilon, config.max_complex_dimension
            )
            if self._rips is None
            else self._rips.with_epsilon(epsilon)
        )
        complex_ = self._rips.complex()
        dims = config.homology_dimensions
        estimated = np.empty(len(dims))
        exact = np.empty(len(dims)) if self.compute_exact else None
        for f_idx, k in enumerate(dims):
            if complex_.num_simplices(k) == 0:
                estimated[f_idx] = 0.0
                if exact is not None:
                    exact[f_idx] = 0.0
                continue
            laplacian = combinatorial_laplacian_operator(
                complex_, k, sparse_format=self.sparse_handoff
            )
            exact_value: Optional[float] = None
            if exact is not None:
                exact_value = float(betti_number(complex_, k))
                exact[f_idx] = exact_value
            if self.estimator is not None:
                estimate = self.estimator.estimate_from_laplacian(laplacian)
                estimated[f_idx] = float(estimate.betti_estimate)
            else:
                estimated[f_idx] = exact_value if exact_value is not None else 0.0
        return estimated, exact


def _sample_features(
    task: _SampleTask,
    config: PipelineConfig,
    cache: Optional[SpectrumCache],
    want_exact: bool,
    laplacian_format: str = "dense",
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Feature rows of one sample: ``(estimated (E, F), exact (E, F) or None)``.

    ``E`` indexes the grouping scales of the task, ``F`` the homology
    dimensions.  ``laplacian_format`` is the negotiated operator format the
    estimator backend receives (see :meth:`BatchFeatureEngine._laplacian_format`):
    with ``"sparse"`` the flag-array Laplacians are built as CSR matrices and
    never densified on the engine side, so sparse backends get their fast
    path end to end.  Pure given ``(task, config, laplacian_format)`` — the
    execution backends rely on that for bit-identical results.
    """
    sweeper = _SampleSweeper(task, config, cache, want_exact, laplacian_format)
    dims = config.homology_dimensions
    estimated = np.empty((len(task.epsilons), len(dims)))
    exact = np.empty_like(estimated) if sweeper.compute_exact else None
    for e_idx, epsilon in enumerate(task.epsilons):
        estimated_row, exact_row = sweeper.features_at(epsilon)
        estimated[e_idx] = estimated_row
        if exact is not None:
            exact[e_idx] = exact_row
    return estimated, exact


# -- process-pool plumbing ------------------------------------------------------

_PROCESS_CACHE: Optional[SpectrumCache] = None


def _process_cache(size: int) -> Optional[SpectrumCache]:
    """Per-worker-process spectrum cache, reused across chunks of one run."""
    global _PROCESS_CACHE
    if size <= 0:
        return None
    if _PROCESS_CACHE is None or _PROCESS_CACHE.maxsize != size:
        _PROCESS_CACHE = SpectrumCache(size)
    return _PROCESS_CACHE


def _run_chunk(payload) -> List[Tuple[int, Tuple[np.ndarray, Optional[np.ndarray]]]]:
    """Top-level (picklable) chunk runner for the ``processes`` backend."""
    config, cache_size, tasks, want_exact, laplacian_format = payload
    cache = _process_cache(cache_size)
    return [
        (task.index, _sample_features(task, config, cache, want_exact, laplacian_format))
        for task in tasks
    ]


class BatchFeatureEngine:
    """Batched, cached Betti-feature extraction over many samples.

    Semantically a vectorised :class:`repro.core.pipeline.QTDAPipeline`: the
    same :class:`PipelineConfig` describes *what* to compute, while
    :class:`BatchConfig` describes *how* (worker pool, chunking, cache).

    Examples
    --------
    >>> from repro.core.pipeline import PipelineConfig
    >>> from repro.datasets.point_clouds import circle_cloud
    >>> engine = BatchFeatureEngine(PipelineConfig(epsilon=0.7, use_quantum=False))
    >>> engine.transform_point_clouds([circle_cloud(10), circle_cloud(12)]).shape
    (2, 2)
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        batch: Optional[BatchConfig] = None,
        spectrum_cache: Optional[SpectrumCache] = None,
        **overrides,
    ):
        base = config if config is not None else PipelineConfig()
        self.config = apply_pipeline_overrides(base, overrides)
        self.batch = batch if batch is not None else BatchConfig()
        if spectrum_cache is not None:
            self._cache: Optional[SpectrumCache] = spectrum_cache
        elif self.batch.spectrum_cache_size > 0:
            self._cache = SpectrumCache(self.batch.spectrum_cache_size)
        else:
            self._cache = None
        self._takens = TakensEmbedding(
            dimension=self.config.takens_dimension,
            delay=self.config.takens_delay,
            stride=self.config.takens_stride,
        )

    # -- public API -----------------------------------------------------------
    @property
    def spectrum_cache(self) -> Optional[SpectrumCache]:
        """The engine's spectrum cache, used by the serial/threads backends.

        The ``processes`` backend cannot see this object: worker processes
        keep their own per-process caches, built fresh for each transform
        call (a pool is created per call).  Cross-call cache reuse therefore
        requires the serial or threads backend.
        """
        return self._cache

    @property
    def feature_names(self) -> Tuple[str, ...]:
        return tuple(f"betti_{k}" for k in self.config.homology_dimensions)

    def transform_point_clouds(
        self, clouds: Sequence[np.ndarray], epsilon: Optional[float] = None
    ) -> np.ndarray:
        """Feature matrix ``(num_clouds, num_features)`` — one row per cloud."""
        distances = [pairwise_distances(np.asarray(c, dtype=float)) for c in clouds]
        return self.transform_distance_matrices(distances, epsilon=epsilon)

    def transform_distance_matrices(
        self, matrices: Sequence[np.ndarray], epsilon: Optional[float] = None
    ) -> np.ndarray:
        """Like :meth:`transform_point_clouds` for precomputed distance matrices."""
        eps = self.config.epsilon if epsilon is None else float(epsilon)
        results = self._execute(self._tasks(matrices, (eps,)), want_exact=False)
        if not results:
            return np.zeros((0, len(self.config.homology_dimensions)))
        return np.vstack([estimated[0] for estimated, _ in results])

    def transform_time_series(self, batch: np.ndarray, epsilon: Optional[float] = None) -> np.ndarray:
        """Delay-embed each row of ``batch`` and extract its Betti features."""
        arr = np.asarray(batch, dtype=float)
        if arr.ndim != 2:
            raise ValueError("batch must be 2-D: one time series per row")
        clouds = [self._takens.transform(row) for row in arr]
        return self.transform_point_clouds(clouds, epsilon=epsilon)

    def sweep(
        self, clouds: Sequence[np.ndarray], epsilons: Iterable[float]
    ) -> np.ndarray:
        """ε-sweep fast path: features of every cloud at every grouping scale.

        Each cloud's distance matrix is computed once; only the neighbourhood
        graph/complex is rebuilt per ε.  Returns an array of shape
        ``(num_epsilons, num_clouds, num_features)``.
        """
        scales = tuple(float(e) for e in epsilons)
        distances = [pairwise_distances(np.asarray(c, dtype=float)) for c in clouds]
        results = self._execute(self._tasks(distances, scales), want_exact=False)
        if not results:
            return np.zeros((len(scales), 0, len(self.config.homology_dimensions)))
        return np.stack([estimated for estimated, _ in results], axis=1)

    def iter_sweep(
        self, clouds: Sequence[np.ndarray], epsilons: Iterable[float]
    ) -> Iterator[Tuple[float, np.ndarray]]:
        """Incremental ε-sweep: yield ``(ε, features (num_clouds, F))`` per scale.

        Streaming counterpart of :meth:`sweep`, bit-identical to it for the
        same configuration: the per-sample state the sweep threads through
        its ε loop (estimator RNG, reusable Rips complexes) lives in
        :class:`_SampleSweeper` objects that persist across yields, so
        evaluating ε-major instead of sample-major changes only *when*
        results become available, never their values.  Consumers that stop
        early pay only for the scales they consumed.

        The ``threads`` and ``processes`` batch backends both fan the
        per-ε sample loop across a thread pool here (per-sweeper RNG state
        cannot migrate between processes mid-sweep); each sweeper is touched
        by exactly one task per scale, so the features stay bit-identical to
        the serial order.
        """
        scales = tuple(float(e) for e in epsilons)
        distances = [pairwise_distances(np.asarray(c, dtype=float)) for c in clouds]
        tasks = self._tasks(distances, scales)
        num_features = len(self.config.homology_dimensions)
        if not tasks:
            for eps in scales:
                yield eps, np.zeros((0, num_features))
            return
        fmt = self._laplacian_format()
        sweepers = [
            _SampleSweeper(task, self.config, self._cache, False, fmt) for task in tasks
        ]
        if self.batch.backend == "serial":
            for eps in scales:
                yield eps, np.vstack([s.features_at(eps)[0] for s in sweepers])
            return
        workers = self.batch.max_workers or (os.cpu_count() or 1)
        workers = max(1, min(workers, len(sweepers)))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            for eps in scales:
                rows = list(pool.map(lambda s: s.features_at(eps)[0], sweepers))
                yield eps, np.vstack(rows)

    def iter_windows(
        self,
        series: np.ndarray,
        window_length: int,
        stride: int = 1,
        epsilons: Optional[Iterable[float]] = None,
    ) -> Iterator["WindowFeatures"]:
        """Slide a window over one raw series through the incremental engine.

        Streaming counterpart of embedding every window and calling
        :meth:`sweep` / :meth:`iter_sweep` on the resulting clouds — and
        bit-identical to them (window ``i`` plays the role of sample ``i``,
        including its derived estimator seed).  Instead of rebuilding each
        window's geometry from scratch, the engine advances a
        :class:`repro.tda.incremental.SlidingDistanceMatrix` and per-ε
        :class:`repro.tda.incremental.IncrementalFlagComplex` states, reusing
        this engine's spectrum cache, so overlapping windows
        (``stride << window_length``) cost per-advance work instead of
        per-window work.  Yields one :class:`WindowFeatures` per window as
        soon as enough samples arrived.
        """
        engine = StreamingFeatureEngine(
            self.config,
            window_length=window_length,
            stride=stride,
            epsilons=epsilons,
            spectrum_cache=self._cache,
            spectrum_cache_size=self.batch.spectrum_cache_size,
            operator_format=self.batch.operator_format,
        )
        arr = np.asarray(series, dtype=float).reshape(-1)
        for pos in range(0, arr.size, engine.stride):
            for window in engine.extend(arr[pos : pos + engine.stride]):
                yield window

    def features_and_exact(
        self, clouds: Sequence[np.ndarray], epsilon: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(estimated, exact)`` feature matrices, one row per cloud.

        The exact classical Betti numbers ride along at marginal cost — on
        the fast path they are kernel counts of spectra the estimator already
        needed (Eq. 6), served from the same cache.  When ``use_quantum`` is
        false both matrices are equal.
        """
        eps = self.config.epsilon if epsilon is None else float(epsilon)
        distances = [pairwise_distances(np.asarray(c, dtype=float)) for c in clouds]
        results = self._execute(self._tasks(distances, (eps,)), want_exact=True)
        if not results:
            empty = np.zeros((0, len(self.config.homology_dimensions)))
            return empty, empty.copy()
        estimated = np.vstack([est[0] for est, _ in results])
        exact = np.vstack([exact_rows[0] for _, exact_rows in results])
        return estimated, exact

    # -- execution ------------------------------------------------------------
    def _tasks(
        self, distances: Sequence[np.ndarray], epsilons: Tuple[float, ...]
    ) -> List[_SampleTask]:
        base_seed = self.config.estimator.seed
        return [
            _SampleTask(
                index=i,
                distances=np.asarray(d, dtype=float),
                epsilons=epsilons,
                seed=derive_seed(base_seed, i),
            )
            for i, d in enumerate(distances)
        ]

    def negotiated_operator_format(self) -> str:
        """Public view of the negotiated handoff format (service provenance)."""
        return self._laplacian_format()

    def _laplacian_format(self) -> str:
        """Negotiated operator format for estimator handoffs (DESIGN.md §9).

        An explicit ``BatchConfig.operator_format`` wins; otherwise the
        configured estimator backend's format preference decides, so e.g.
        ``backend="sparse-exact"`` sweeps build flag-array Laplacians as CSR
        matrices and the estimator never sees a dense matrix it would have to
        re-sparsify.  Classical-only runs (``use_quantum=False``) stay dense —
        their eigenvalue counts densify anyway.
        """
        return _negotiate_laplacian_format(self.config, self.batch.operator_format)

    def _execute(
        self, tasks: List[_SampleTask], want_exact: bool
    ) -> List[Tuple[np.ndarray, Optional[np.ndarray]]]:
        if not tasks:
            return []
        fmt = self._laplacian_format()
        if self.batch.backend == "serial":
            return [_sample_features(t, self.config, self._cache, want_exact, fmt) for t in tasks]
        workers = self.batch.max_workers or (os.cpu_count() or 1)
        workers = max(1, min(workers, len(tasks)))
        chunk = self.batch.chunk_size or max(1, math.ceil(len(tasks) / (4 * workers)))
        chunks = [tasks[i : i + chunk] for i in range(0, len(tasks), chunk)]
        results: List[Optional[Tuple[np.ndarray, Optional[np.ndarray]]]] = [None] * len(tasks)
        if self.batch.backend == "threads":
            def run(chunk_tasks):
                return [
                    (t.index, _sample_features(t, self.config, self._cache, want_exact, fmt))
                    for t in chunk_tasks
                ]

            with ThreadPoolExecutor(max_workers=workers) as pool:
                for chunk_result in pool.map(run, chunks):
                    for index, value in chunk_result:
                        results[index] = value
        else:  # processes
            payloads = [
                (self.config, self.batch.spectrum_cache_size, chunk_tasks, want_exact, fmt)
                for chunk_tasks in chunks
            ]
            with ProcessPoolExecutor(max_workers=workers) as pool:
                for chunk_result in pool.map(_run_chunk, payloads):
                    for index, value in chunk_result:
                        results[index] = value
        return results  # type: ignore[return-value]


# -- incremental streaming ------------------------------------------------------


@dataclass(frozen=True)
class WindowFeatures:
    """One emitted window of a streaming sweep (see :class:`StreamingFeatureEngine`).

    ``index`` doubles as the estimator-seed derivation index, so window ``i``
    of a stream gets exactly the per-sample seed that cloud ``i`` of the
    equivalent batched sweep would (``derive_seed(config.estimator.seed, i)``)
    — the anchor of the bit-identity guarantee.
    """

    index: int                    #: window number, 0-based (= seed derivation index)
    start: int                    #: absolute raw-sample index of the window start
    epsilons: Tuple[float, ...]   #: grouping scales, in evaluation order
    features: np.ndarray          #: (num_epsilons, num_features) estimated Betti features
    incremental: bool             #: advanced by deltas (False: first window / full replace)
    unchanged: bool               #: every ε complex bit-identical to the previous window's
    simplices_destroyed: int      #: delta size, summed over ε (0 when unchanged)
    simplices_created: int


class _EpsilonState:
    """Per-ε streaming state: the incremental complex plus reusable artefacts."""

    __slots__ = ("complex", "operators", "row")

    def __init__(self, complex_: IncrementalFlagComplex):
        self.complex = complex_
        #: k -> LaplacianOperator built from the *current* arrays; invalidated
        #: per dimension by the delta's changed flags, so unchanged
        #: sub-Laplacians keep their memoised fingerprints across windows.
        self.operators: Dict[int, object] = {}
        #: cached classical feature row (pure function of the arrays); never
        #: used in quantum mode, where per-window seeds must differ.
        self.row: Optional[np.ndarray] = None


class StreamingFeatureEngine:
    """Online sliding-window Betti features with incremental window advances.

    Feed raw time-series samples one at a time (:meth:`observe`) or in chunks
    (:meth:`extend`); every time a full window of ``window_length`` samples is
    available the engine emits its Betti features and advances the window by
    ``stride``.  The features are **bit-identical** to Takens-embedding each
    window and running it through :meth:`BatchFeatureEngine.sweep` /
    :meth:`~BatchFeatureEngine.iter_sweep` (window index = sample index), but
    the per-window cost is incremental (DESIGN.md §13):

    - the embedded point cloud advances by point enter/leave whenever the
      window stride is a multiple of the Takens stride, so only the entering
      points' distances are computed (:class:`SlidingDistanceMatrix`);
    - each ε's flag complex is patched with simplex deltas instead of
      re-enumerated (:class:`IncrementalFlagComplex`);
    - per-dimension Laplacian operators survive across windows when their
      inputs didn't change, so their memoised fingerprints make
      :class:`SpectrumCache` lookups O(1) and unchanged sub-Laplacians skip
      the eigensolve, the rebuild and the rehash;
    - in classical mode (``use_quantum=False``) a fully unchanged ε state
      reuses the previous feature row outright.

    When ``stride % takens_stride != 0`` (window advances shift every
    embedded point's coordinates) or the windows don't overlap in embedded
    points, the engine falls back to a full per-window rebuild *through the
    same delta path* (``leave == num_points``), still bit-identical.
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        *,
        window_length: int,
        stride: int = 1,
        epsilons: Optional[Iterable[float]] = None,
        spectrum_cache: Optional[SpectrumCache] = None,
        spectrum_cache_size: int = 1024,
        operator_format: Optional[str] = None,
        **overrides,
    ):
        base = config if config is not None else PipelineConfig()
        self.config = apply_pipeline_overrides(base, overrides)
        if self.config.max_complex_dimension > 2:
            raise ValueError(
                "StreamingFeatureEngine requires max_complex_dimension <= 2 "
                "(the flag-array fast path the incremental layer patches)"
            )
        self.window_length = check_integer(window_length, "window_length", minimum=1)
        self.stride = check_integer(stride, "stride", minimum=1)
        scales = tuple(
            float(e) for e in (epsilons if epsilons is not None else (self.config.epsilon,))
        )
        if not scales:
            raise ValueError("epsilons must contain at least one grouping scale")
        self.epsilons = scales
        if spectrum_cache is not None:
            self._cache: Optional[SpectrumCache] = spectrum_cache
        elif spectrum_cache_size > 0:
            self._cache = SpectrumCache(spectrum_cache_size)
        else:
            self._cache = None
        self._format = _negotiate_laplacian_format(self.config, operator_format)
        self._sparse_handoff = self._format == "sparse"
        self._takens = TakensEmbedding(
            dimension=self.config.takens_dimension,
            delay=self.config.takens_delay,
            stride=self.config.takens_stride,
        )
        span = self._takens.window_size
        if self.window_length < span:
            raise ValueError(
                f"window_length={self.window_length} is shorter than the Takens span {span}"
            )
        self._points_per_window = (self.window_length - span) // self._takens.stride + 1
        # Incrementality precondition: a window advance maps onto point
        # enter/leave only when the window stride is a multiple of the Takens
        # stride (otherwise every embedded point's coordinates shift).  A
        # non-overlapping advance degenerates to leave == num_points, the
        # full-replacement route.
        if self.stride % self._takens.stride == 0:
            self._leave = min(self.stride // self._takens.stride, self._points_per_window)
        else:
            self._leave = self._points_per_window
        self._buffer = np.zeros(0, dtype=float)
        self._buffer_start = 0  # absolute raw index of buffer[0]
        self._next_start = 0    # absolute raw index of the next window to emit
        self._window_index = 0
        self._sdm: Optional[SlidingDistanceMatrix] = None
        self._states: Dict[float, _EpsilonState] = {}
        #: Observability counters (cumulative; surfaced by the observe endpoint).
        self.stats: Dict[str, int] = {
            "windows": 0,
            "full_builds": 0,
            "incremental_advances": 0,
            "unchanged_windows": 0,
            "feature_rows_reused": 0,
            "simplices_destroyed": 0,
            "simplices_created": 0,
        }

    # -- public API -----------------------------------------------------------
    @property
    def feature_names(self) -> Tuple[str, ...]:
        return tuple(f"betti_{k}" for k in self.config.homology_dimensions)

    @property
    def points_per_window(self) -> int:
        """Embedded points per window under the configured Takens embedding."""
        return self._points_per_window

    @property
    def windows_emitted(self) -> int:
        return self._window_index

    @property
    def samples_seen(self) -> int:
        return self._buffer_start + int(self._buffer.size)

    def negotiated_operator_format(self) -> str:
        """Public view of the negotiated handoff format (service provenance)."""
        return self._format

    def observe(self, sample: float) -> Optional["WindowFeatures"]:
        """Feed one raw sample; the completed window's features, or ``None``.

        A single sample completes at most one window (``stride >= 1``), so
        the return value is scalar — the live-serving call shape.
        """
        emitted = self.extend((float(sample),))
        return emitted[-1] if emitted else None

    def extend(self, samples: Iterable[float]) -> List["WindowFeatures"]:
        """Feed a chunk of raw samples; every window they complete, in order."""
        arr = np.asarray(samples, dtype=float).reshape(-1)
        if arr.size:
            self._buffer = np.concatenate([self._buffer, arr]) if self._buffer.size else arr
        emitted: List[WindowFeatures] = []
        while self._buffer_start + self._buffer.size - self._next_start >= self.window_length:
            emitted.append(self._emit())
        return emitted

    def process(self, series: np.ndarray) -> np.ndarray:
        """Feed a whole series; features stacked ``(num_epsilons, windows, F)``.

        Shape- and bit-compatible with :meth:`BatchFeatureEngine.sweep` over
        the same (embedded) sliding windows.
        """
        emitted = self.extend(np.asarray(series, dtype=float).reshape(-1))
        if not emitted:
            return np.zeros((len(self.epsilons), 0, len(self.config.homology_dimensions)))
        return np.stack([window.features for window in emitted], axis=1)

    # -- window advance -------------------------------------------------------
    def _emit(self) -> "WindowFeatures":
        start = self._next_start
        incremental, unchanged, destroyed, created = self._advance_geometry(start)
        features = self._window_features()
        window = WindowFeatures(
            index=self._window_index,
            start=start,
            epsilons=self.epsilons,
            features=features,
            incremental=incremental,
            unchanged=unchanged,
            simplices_destroyed=destroyed,
            simplices_created=created,
        )
        self._window_index += 1
        self.stats["windows"] += 1
        self._next_start = start + self.stride
        drop = self._next_start - self._buffer_start
        if drop > 0:
            # Samples before the next window start can never be read again.
            self._buffer = self._buffer[drop:]
            self._buffer_start = self._next_start
        return window

    def _advance_geometry(self, start: int) -> Tuple[bool, bool, int, int]:
        """Advance distances + per-ε complexes to the window at ``start``.

        Returns ``(incremental, unchanged, simplices_destroyed, simplices_created)``.
        """
        offset = start - self._buffer_start
        n = self._points_per_window
        if self._sdm is None:
            window = self._buffer[offset : offset + self.window_length]
            cloud = self._takens.transform(window)
            self._sdm = SlidingDistanceMatrix(cloud)
            distances = self._sdm.distances
            self._states = {
                eps: _EpsilonState(
                    IncrementalFlagComplex(distances, eps, self.config.max_complex_dimension)
                )
                for eps in self.epsilons
            }
            self.stats["full_builds"] += 1
            return False, False, 0, 0
        if self._leave >= n:
            # Full point replacement (fallback / non-overlapping windows):
            # same delta path with leave == num_points.
            window = self._buffer[offset : offset + self.window_length]
            new_points = self._takens.transform(window)
            self.stats["full_builds"] += 1
            incremental = False
        else:
            # Only the entering embedded points are materialised; their
            # gathers read the same raw floats a from-scratch embedding
            # would, so the coordinates are bitwise identical.
            entering = np.arange(n - self._leave, n)
            gather = (
                offset
                + entering[:, None] * self._takens.stride
                + np.arange(self._takens.dimension)[None, :] * self._takens.delay
            )
            new_points = self._buffer[gather]
            self.stats["incremental_advances"] += 1
            incremental = True
        previous = self._sdm.distances
        distances = self._sdm.advance(self._leave, new_points)
        if np.array_equal(previous, distances):
            # Identical geometry: every ε state (arrays, operators,
            # fingerprints, classical feature rows) carries over untouched.
            self.stats["unchanged_windows"] += 1
            return incremental, True, 0, 0
        destroyed = created = 0
        all_unchanged = True
        for eps in self.epsilons:
            state = self._states[eps]
            delta = state.complex.advance(self._leave, distances)
            destroyed += delta.num_destroyed
            created += delta.num_created
            if delta.unchanged:
                # Same arrays by content: operators and rows stay valid.
                continue
            all_unchanged = False
            state.row = None
            if delta.vertices_changed or delta.edges_changed:
                state.operators.pop(0, None)
            if delta.edges_changed or delta.triangles_changed:
                state.operators.pop(1, None)
                state.operators.pop(2, None)
        self.stats["simplices_destroyed"] += destroyed
        self.stats["simplices_created"] += created
        if all_unchanged:
            self.stats["unchanged_windows"] += 1
        return incremental, all_unchanged, destroyed, created

    def _window_features(self) -> np.ndarray:
        """Features of the current window — same loop order as the batch sweep."""
        estimator: Optional[QTDABettiEstimator] = None
        if self.config.use_quantum:
            estimator = QTDABettiEstimator(
                self.config.estimator.replace(
                    seed=derive_seed(self.config.estimator.seed, self._window_index)
                ),
                spectrum_cache=self._cache,
            )
        compute_exact = not self.config.use_quantum
        features = np.empty((len(self.epsilons), len(self.config.homology_dimensions)))
        for e_idx, eps in enumerate(self.epsilons):
            state = self._states[eps]
            if estimator is None and state.row is not None:
                # Classical features are a pure function of the (unchanged)
                # arrays; quantum estimates are not (per-window seeds differ
                # by design), so the row cache never applies there.
                features[e_idx] = state.row
                self.stats["feature_rows_reused"] += 1
                continue
            row, _ = _flag_features(
                state.complex.arrays,
                self.config,
                self._cache,
                estimator,
                compute_exact,
                self._sparse_handoff,
                operators=state.operators,
            )
            features[e_idx] = row
            if estimator is None:
                state.row = row
        return features
