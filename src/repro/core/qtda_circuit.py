"""Assembly of the full QTDA circuit (Fig. 6).

Register layout (matching the figure, top to bottom):

* ``t`` precision qubits (qubits ``0 .. t-1``) — phase readout;
* ``q`` system qubits (qubits ``t .. t+q-1``) — carry the padded Laplacian's
  eigenvectors;
* ``q`` auxiliary qubits (qubits ``t+q .. t+2q-1``) — purify the maximally
  mixed input state (Fig. 2); only present when purification is requested.

The circuit is: mixed-state preparation, then QPE (Hadamards, controlled
powers of ``U = exp(iH)``, inverse QFT), then measurement of the precision
register.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.hamiltonian import RescaledHamiltonian
from repro.core.mixed_state import maximally_mixed_state_circuit
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.qpe import SpectralUnitary, phase_estimation_circuit
from repro.quantum.trotter import pauli_evolution_circuit
from repro.utils.validation import check_positive_integer


@dataclass(frozen=True)
class QTDACircuitSpec:
    """Static description of a QTDA circuit's register layout."""

    precision_qubits: int
    system_qubits: int
    auxiliary_qubits: int

    @property
    def total_qubits(self) -> int:
        return self.precision_qubits + self.system_qubits + self.auxiliary_qubits

    @property
    def precision_register(self) -> Tuple[int, ...]:
        return tuple(range(self.precision_qubits))

    @property
    def system_register(self) -> Tuple[int, ...]:
        return tuple(range(self.precision_qubits, self.precision_qubits + self.system_qubits))

    @property
    def auxiliary_register(self) -> Tuple[int, ...]:
        start = self.precision_qubits + self.system_qubits
        return tuple(range(start, start + self.auxiliary_qubits))


def qtda_circuit(
    hamiltonian: RescaledHamiltonian,
    precision_qubits: int,
    use_purification: bool = True,
    synthesis: str = "exact",
    trotter_steps: int = 4,
    trotter_order: int = 1,
    power_synthesis: str = "chain",
) -> tuple[QuantumCircuit, QTDACircuitSpec]:
    """Build the full QTDA circuit of Fig. 6.

    Parameters
    ----------
    hamiltonian:
        The rescaled Hamiltonian (from :func:`repro.core.hamiltonian.build_hamiltonian`).
    precision_qubits:
        Number of QPE precision qubits ``t``.
    use_purification:
        Include the auxiliary register and the Fig. 2 mixed-state
        preparation.  When false the circuit expects the caller to supply the
        system register's initial state explicitly (e.g. a basis state).
    synthesis:
        ``"exact"`` — controlled powers of the dense ``exp(iH)``;
        ``"trotter"`` — ``U`` synthesised from the Pauli decomposition with
        the requested product formula (the Fig. 7 construction), each gate of
        which is controlled and repeated inside QPE.
    trotter_steps, trotter_order:
        Product-formula parameters for ``synthesis="trotter"``.
    power_synthesis:
        For ``synthesis="exact"``: ``"chain"`` (default) exponentiates ``H``
        once (``expm``) and lets QPE power the dense unitary per precision
        qubit by repeated squaring — bit-identical to every pre-engine
        release — while ``"spectral"`` diagonalises ``H`` once (``eigh``) and
        every controlled power ``U^{2^j}`` is the same eigenbasis with phases
        raised to ``2^j`` (no ``expm``, no per-qubit matrix powering; used by
        the batched ``ensemble`` circuit route).  Ignored for
        ``synthesis="trotter"`` (powers are realised by repetition).

    Returns
    -------
    (circuit, spec)
        The circuit and the register-layout description.
    """
    t = check_positive_integer(precision_qubits, "precision_qubits")
    q = hamiltonian.num_qubits
    aux = q if use_purification else 0
    spec = QTDACircuitSpec(precision_qubits=t, system_qubits=q, auxiliary_qubits=aux)

    if power_synthesis not in ("chain", "spectral"):
        raise ValueError(
            f"power_synthesis must be 'chain' or 'spectral', got {power_synthesis!r}"
        )
    if synthesis == "exact":
        if power_synthesis == "spectral":
            unitary: np.ndarray | QuantumCircuit | SpectralUnitary = (
                SpectralUnitary.from_hermitian(hamiltonian.matrix)
            )
        else:
            unitary = hamiltonian.unitary()
    elif synthesis == "trotter":
        unitary = pauli_evolution_circuit(
            hamiltonian.pauli_decomposition(),
            time=1.0,
            trotter_steps=trotter_steps,
            order=trotter_order,
            name="exp(iH)·trotter",
        )
    else:
        raise ValueError(f"Unknown synthesis {synthesis!r}; use 'exact' or 'trotter'")

    circ = QuantumCircuit(spec.total_qubits, name="QTDA")
    if use_purification:
        prep = maximally_mixed_state_circuit(
            q,
            system_offset=t,
            auxiliary_offset=t + q,
            total_qubits=spec.total_qubits,
        )
        circ.compose(prep, qubits=list(range(spec.total_qubits)))

    qpe = phase_estimation_circuit(unitary, num_precision=t, num_system=q, num_auxiliary=0)
    # QPE is laid out on (precision, system); map it onto the full register.
    circ.compose(qpe, qubits=list(spec.precision_register) + list(spec.system_register))
    return circ, spec


def circuit_resource_summary(circuit: QuantumCircuit, spec: QTDACircuitSpec) -> dict:
    """Resource counts used in the examples and EXPERIMENTS.md."""
    return {
        "total_qubits": spec.total_qubits,
        "precision_qubits": spec.precision_qubits,
        "system_qubits": spec.system_qubits,
        "auxiliary_qubits": spec.auxiliary_qubits,
        "num_gates": circuit.num_gates,
        "depth": circuit.depth(),
        "gate_histogram": circuit.count_ops(),
    }
