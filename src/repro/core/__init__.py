"""The paper's core algorithm: QPE-based estimation of Betti numbers.

The pipeline implemented here follows Section 3 of the paper step by step:

1. :mod:`repro.core.padding` — pad the combinatorial Laplacian to the next
   power of two with an identity block scaled by ``λ̃_max / 2`` (Eq. 7), so
   the padding introduces no spurious zero eigenvalues (the naive zero
   padding is also provided, as the ablation baseline).
2. :mod:`repro.core.hamiltonian` — rescale to ``H = (δ / λ̃_max) Δ̃_k`` so the
   spectrum fits inside ``[0, 2π)`` and build ``U = exp(iH)`` (Eqs. 8–9).
3. :mod:`repro.core.mixed_state` — prepare the maximally mixed input state
   with auxiliary qubits (Fig. 2).
4. :mod:`repro.core.qtda_circuit` — assemble the full circuit of Fig. 6
   (mixed-state preparation + QPE with the chosen number of precision
   qubits).
5. :mod:`repro.core.backends` — the pluggable execution-backend registry
   (analytical, sparse spectral, circuit, Trotterised, noisy density-matrix
   paths; see DESIGN.md §5).
6. :mod:`repro.core.estimator` — resolve the configured backend, read off
   ``p(0)`` and return ``β̃_k = 2^q · p(0)`` (Eqs. 10–11).
7. :mod:`repro.core.pipeline` — go from raw point clouds / time series to
   Betti-number feature vectors for machine learning (Section 5).
8. :mod:`repro.core.api` — the service-grade front door: typed
   request/response layer (``EstimationRequest`` → ``EstimationResult``)
   and the concurrent :class:`~repro.core.api.QTDAService` over all of the
   above (DESIGN.md §10).
"""

from repro.core.backends import (
    BackendResult,
    BettiBackend,
    EstimationProblem,
    available_backends,
    backend_formats,
    backend_supports_noise,
    get_backend,
    preferred_format,
    register_backend,
    temporary_backend,
    unregister_backend,
)
from repro.core.operators import (
    OPERATOR_FORMATS,
    DenseOperator,
    LaplacianOperator,
    MatrixFreeOperator,
    SparseOperator,
    as_operator,
)
from repro.core.config import QTDAConfig
from repro.core.padding import pad_laplacian, zero_pad_laplacian, PaddedLaplacian
from repro.core.hamiltonian import (
    build_hamiltonian,
    qtda_unitary,
    padded_spectrum,
    PaddedSpectrum,
    RescaledHamiltonian,
    SpectrumCache,
)
from repro.core.mixed_state import maximally_mixed_state_circuit, mixed_state_purification_qubits
from repro.core.qtda_circuit import qtda_circuit, QTDACircuitSpec
from repro.core.estimator import BettiEstimate, QTDABettiEstimator
from repro.core.zne import ZNEResult, richardson_extrapolate, zero_noise_extrapolation
from repro.core.pipeline import PipelineConfig, QTDAPipeline, betti_feature_vector
from repro.core.batch import BatchConfig, BatchFeatureEngine
from repro.core.api import (
    EstimationRequest,
    EstimationResult,
    ExperimentRequest,
    PipelineRequest,
    Provenance,
    QTDAService,
    SweepRequest,
    request_from_dict,
)

__all__ = [
    "QTDAConfig",
    "BackendResult",
    "BettiBackend",
    "EstimationProblem",
    "available_backends",
    "backend_formats",
    "backend_supports_noise",
    "get_backend",
    "preferred_format",
    "register_backend",
    "temporary_backend",
    "unregister_backend",
    "OPERATOR_FORMATS",
    "LaplacianOperator",
    "DenseOperator",
    "SparseOperator",
    "MatrixFreeOperator",
    "as_operator",
    "padded_spectrum",
    "PaddedSpectrum",
    "SpectrumCache",
    "BatchConfig",
    "BatchFeatureEngine",
    "pad_laplacian",
    "zero_pad_laplacian",
    "PaddedLaplacian",
    "build_hamiltonian",
    "qtda_unitary",
    "RescaledHamiltonian",
    "maximally_mixed_state_circuit",
    "mixed_state_purification_qubits",
    "qtda_circuit",
    "QTDACircuitSpec",
    "BettiEstimate",
    "QTDABettiEstimator",
    "ZNEResult",
    "richardson_extrapolate",
    "zero_noise_extrapolation",
    "PipelineConfig",
    "QTDAPipeline",
    "betti_feature_vector",
    "EstimationRequest",
    "PipelineRequest",
    "SweepRequest",
    "ExperimentRequest",
    "EstimationResult",
    "Provenance",
    "QTDAService",
    "request_from_dict",
]
