"""The QPE-based Betti-number estimator (Eqs. 10–11).

:class:`QTDABettiEstimator` ties the whole Section 3 pipeline together:
Laplacian -> padding -> rescaling -> (circuit or analytical) QPE with a
maximally mixed input -> probability of the all-zero phase readout ->
``β̃_k = 2^q · p(0)``.

Three backends are supported (see DESIGN.md §5):

* ``exact`` — the analytical QPE readout distribution from the Hamiltonian's
  eigenphases; fastest, used for the paper-scale sweeps.  With finite
  ``shots`` the distribution is sampled, reproducing shot noise exactly.
* ``statevector`` — explicit Fig. 6 circuit with exact controlled powers of
  ``U``; with purification (Fig. 2) it runs on ``t + 2q`` qubits, otherwise
  on ``t + q`` qubits via the density-matrix simulator with an ``I/2^q``
  input.
* ``trotter`` — like ``statevector`` but ``U`` is synthesised from the Pauli
  decomposition of ``H`` (Fig. 7), so the estimate includes product-formula
  error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import QTDAConfig
from repro.core.hamiltonian import (
    RescaledHamiltonian,
    SpectrumCache,
    build_hamiltonian,
    padded_spectrum,
)
from repro.core.qtda_circuit import QTDACircuitSpec, qtda_circuit
from repro.quantum.density_matrix import DensityMatrix, DensityMatrixSimulator
from repro.quantum.measurement import sample_counts
from repro.quantum.qpe import qpe_outcome_distribution
from repro.quantum.statevector import StatevectorSimulator
from repro.tda.complexes import SimplicialComplex
from repro.tda.laplacian import combinatorial_laplacian
from repro.utils.rng import as_rng


@dataclass
class BettiEstimate:
    """Result of one Betti-number estimation.

    Attributes
    ----------
    betti_estimate:
        The raw rational estimate ``β̃_k = 2^q · p(0)`` (Eq. 11).
    betti_rounded:
        ``β̃_k`` rounded to the nearest integer (what the paper reports as
        "the correct value" in the worked example).
    p_zero:
        Probability (exact or empirical) of the all-zero phase readout.
    num_system_qubits:
        ``q``, so that ``betti_estimate = 2**num_system_qubits * p_zero``.
    precision_qubits, shots, backend:
        Echo of the configuration used.
    exact_betti:
        Classically computed ``β_k`` (only populated when the estimator was
        given a simplicial complex or asked to compute it); used for error
        reporting à la Eq. 12.
    counts:
        Raw measurement counts of the precision register (empty for
        infinite-shot runs).
    lambda_max, delta:
        Spectral-scaling provenance.
    """

    betti_estimate: float
    betti_rounded: int
    p_zero: float
    num_system_qubits: int
    precision_qubits: int
    shots: Optional[int]
    backend: str
    exact_betti: Optional[int] = None
    counts: Dict[str, int] = field(default_factory=dict)
    lambda_max: float = 0.0
    delta: float = 0.0

    @property
    def absolute_error(self) -> Optional[float]:
        """``|β̃_k - β_k|`` (Eq. 12) when the exact value is known."""
        if self.exact_betti is None:
            return None
        return float(abs(self.betti_estimate - self.exact_betti))

    @property
    def rounded_error(self) -> Optional[int]:
        """``|round(β̃_k) - β_k|`` when the exact value is known."""
        if self.exact_betti is None:
            return None
        return int(abs(self.betti_rounded - self.exact_betti))

    def as_dict(self) -> Dict[str, object]:
        """Plain-dictionary view (used by the experiment drivers)."""
        return {
            "betti_estimate": self.betti_estimate,
            "betti_rounded": self.betti_rounded,
            "p_zero": self.p_zero,
            "num_system_qubits": self.num_system_qubits,
            "precision_qubits": self.precision_qubits,
            "shots": self.shots,
            "backend": self.backend,
            "exact_betti": self.exact_betti,
            "absolute_error": self.absolute_error,
            "lambda_max": self.lambda_max,
            "delta": self.delta,
        }


class QTDABettiEstimator:
    """Estimate Betti numbers of simplicial complexes with QPE.

    Parameters mirror :class:`repro.core.config.QTDAConfig`; either pass a
    ready-made config or keyword arguments (keywords override the config).

    Examples
    --------
    >>> from repro.tda import SimplicialComplex
    >>> complex_ = SimplicialComplex([(0,), (1,), (2,), (0, 1), (0, 2), (1, 2)])
    >>> estimator = QTDABettiEstimator(precision_qubits=4, shots=None)
    >>> estimator.estimate(complex_, k=1).betti_rounded   # the hollow triangle has one loop
    1
    """

    def __init__(
        self,
        config: Optional[QTDAConfig] = None,
        spectrum_cache: Optional[SpectrumCache] = None,
        **overrides,
    ):
        base = config if config is not None else QTDAConfig()
        self.config = base.replace(**overrides) if overrides else base
        self._rng = as_rng(self.config.seed)
        #: Optional shared cache of Laplacian spectra used by the ``exact``
        #: backend (see DESIGN.md §6); caching never changes results, only cost.
        self.spectrum_cache = spectrum_cache

    # -- public API -----------------------------------------------------------
    def estimate(self, complex_: SimplicialComplex, k: int, compute_exact: bool = True) -> BettiEstimate:
        """Estimate ``β_k`` of a simplicial complex.

        ``compute_exact=True`` also computes the classical Betti number for
        error reporting (cheap at the scales of the paper).
        """
        if not isinstance(complex_, SimplicialComplex):
            raise TypeError("estimate expects a SimplicialComplex; use estimate_from_laplacian for raw matrices")
        num_k = complex_.num_simplices(k)
        exact: Optional[int] = None
        if compute_exact:
            from repro.tda.betti import betti_number

            exact = betti_number(complex_, k)
        if num_k == 0:
            # No k-simplices: β_k = 0 by convention, nothing to run.
            return BettiEstimate(
                betti_estimate=0.0,
                betti_rounded=0,
                p_zero=0.0,
                num_system_qubits=0,
                precision_qubits=self.config.precision_qubits,
                shots=self.config.shots,
                backend=self.config.backend,
                exact_betti=exact,
                lambda_max=0.0,
                delta=self.config.delta,
            )
        laplacian = combinatorial_laplacian(complex_, k)
        return self.estimate_from_laplacian(laplacian, exact_betti=exact)

    def estimate_from_laplacian(self, laplacian: np.ndarray, exact_betti: Optional[int] = None) -> BettiEstimate:
        """Estimate the kernel dimension of an explicit combinatorial Laplacian.

        Accepts dense or ``scipy.sparse`` matrices.  The ``exact`` backend
        diagonalises the small ``|S_k| x |S_k|`` matrix once (through the
        shared :class:`SpectrumCache` when one is attached) and derives the
        padded Hamiltonian's eigenphases analytically; circuit backends build
        the dense padded Hamiltonian as before.
        """
        if exact_betti is None:
            exact_betti_val: Optional[int] = None
        else:
            exact_betti_val = int(exact_betti)
        if self.config.backend == "exact":
            spectrum = padded_spectrum(
                laplacian,
                delta=self.config.delta,
                padding=self.config.padding,
                cache=self.spectrum_cache,
            )
            distribution = qpe_outcome_distribution(
                spectrum.eigenphases(), self.config.precision_qubits
            )
            num_qubits = spectrum.num_qubits
            lambda_max = spectrum.lambda_max
        else:
            hamiltonian = build_hamiltonian(
                laplacian, delta=self.config.delta, padding=self.config.padding
            )
            distribution = self._circuit_distribution(
                hamiltonian, synthesis="exact" if self.config.backend == "statevector" else "trotter"
            )
            num_qubits = hamiltonian.num_qubits
            lambda_max = hamiltonian.padded.lambda_max
        p_zero, counts = self._readout(distribution)
        dim = 2**num_qubits
        estimate = dim * p_zero
        return BettiEstimate(
            betti_estimate=float(estimate),
            betti_rounded=int(round(estimate)),
            p_zero=float(p_zero),
            num_system_qubits=num_qubits,
            precision_qubits=self.config.precision_qubits,
            shots=self.config.shots,
            backend=self.config.backend,
            exact_betti=exact_betti_val,
            counts=counts,
            lambda_max=lambda_max,
            delta=self.config.delta,
        )

    def estimate_betti_numbers(
        self, complex_: SimplicialComplex, dimensions: Sequence[int], compute_exact: bool = True
    ) -> List[BettiEstimate]:
        """Estimate several Betti numbers of the same complex (e.g. ``[0, 1]``)."""
        return [self.estimate(complex_, k, compute_exact=compute_exact) for k in dimensions]

    # -- backends ----------------------------------------------------------------
    def _circuit_distribution(self, hamiltonian: RescaledHamiltonian, synthesis: str) -> np.ndarray:
        circuit, spec = qtda_circuit(
            hamiltonian,
            precision_qubits=self.config.precision_qubits,
            use_purification=self.config.use_purification and self.config.noise_model is None,
            synthesis=synthesis,
            trotter_steps=self.config.trotter_steps,
            trotter_order=self.config.trotter_order,
        )
        precision_register = list(spec.precision_register)
        if self.config.noise_model is not None or spec.auxiliary_qubits == 0:
            # Density-matrix route: start the system register in I/2^q directly.
            sim = DensityMatrixSimulator(noise_model=self.config.noise_model)
            initial = self._mixed_initial_state(spec)
            final = sim.run(circuit, initial_state=initial)
            return final.marginal_probabilities(precision_register)
        sim = StatevectorSimulator()
        return sim.probabilities(circuit, qubits=precision_register)

    def _mixed_initial_state(self, spec: QTDACircuitSpec) -> DensityMatrix:
        """``|0><0|`` on precision (and auxiliary) registers, ``I/2^q`` on the system."""
        t, q, aux = spec.precision_qubits, spec.system_qubits, spec.auxiliary_qubits
        rho_precision = DensityMatrix.zero_state(t).matrix
        rho_system = DensityMatrix.maximally_mixed(q).matrix
        rho = np.kron(rho_precision, rho_system)
        if aux:
            rho = np.kron(rho, DensityMatrix.zero_state(aux).matrix)
        return DensityMatrix(rho)

    def _readout(self, distribution: np.ndarray) -> tuple[float, Dict[str, int]]:
        """Exact or sampled probability of the all-zero precision readout."""
        distribution = np.asarray(distribution, dtype=float)
        if self.config.shots is None:
            return float(distribution[0]), {}
        num_bits = int(np.log2(distribution.size))
        counts = sample_counts(distribution, self.config.shots, num_bits=num_bits, seed=self._rng)
        zero_key = "0" * num_bits
        return counts.get(zero_key, 0) / self.config.shots, counts
