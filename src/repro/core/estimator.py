"""The QPE-based Betti-number estimator (Eqs. 10–11).

:class:`QTDABettiEstimator` ties the whole Section 3 pipeline together:
Laplacian -> padding -> rescaling -> (circuit or analytical) QPE with a
maximally mixed input -> probability of the all-zero phase readout ->
``β̃_k = 2^q · p(0)``.

Execution is delegated to the pluggable backend registry
(:mod:`repro.core.backends`, DESIGN.md §5): the configured ``backend`` name
is resolved through :func:`repro.core.backends.get_backend`, the backend
returns the precision-register readout distribution, and the estimator
derives ``p(0)`` from it — exactly for infinite shots, by multinomial
sampling otherwise, so finite-shot behaviour is identical across backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.backends import EstimationProblem, get_backend, preferred_format
from repro.core.config import QTDAConfig
from repro.core.hamiltonian import SpectrumCache
from repro.quantum.measurement import sample_counts
from repro.tda.complexes import SimplicialComplex
from repro.tda.laplacian import combinatorial_laplacian
from repro.utils.rng import as_rng


@dataclass
class BettiEstimate:
    """Result of one Betti-number estimation.

    Attributes
    ----------
    betti_estimate:
        The raw rational estimate ``β̃_k = 2^q · p(0)`` (Eq. 11).
    betti_rounded:
        ``β̃_k`` rounded to the nearest integer (what the paper reports as
        "the correct value" in the worked example).
    p_zero:
        Probability (exact or empirical) of the all-zero phase readout.
    num_system_qubits:
        ``q``, so that ``betti_estimate = 2**num_system_qubits * p_zero``.
    precision_qubits, shots, backend:
        Echo of the configuration used.
    exact_betti:
        Classically computed ``β_k`` (only populated when the estimator was
        given a simplicial complex or asked to compute it); used for error
        reporting à la Eq. 12.
    counts:
        Raw measurement counts of the precision register (empty for
        infinite-shot runs).
    lambda_max, delta:
        Spectral-scaling provenance.
    betti_std:
        One standard error of ``β̃_k`` as reported by a *stochastic* backend
        (``2^q`` times the backend's ``p(0)`` standard error; the
        ``stochastic-trace`` backend's Hutchinson sampling error).  ``None``
        for deterministic backends.  Shot noise is *not* included — it is
        identical across backends and already visible through ``counts``.
    engine_route, fused_gates:
        Circuit-execution provenance echoed from
        :class:`~repro.core.backends.BackendResult`: the concrete route the
        circuit backend took (``"ensemble"``/``"ptm"``/``"trajectory"``/
        ``"purified"``/``"density"``) and the post-fusion block count — fused
        gates on the ensemble engine, fused superoperators on the PTM route.
        ``None`` for non-circuit backends.
    n_trajectories, noise_spec:
        Noise-execution provenance echoed from
        :class:`~repro.core.backends.BackendResult`: the number of stochastic
        Kraus-trajectory repetitions (``trajectory`` route) and the JSON-safe
        resolved :class:`~repro.quantum.channels.NoiseSpec` the run executed
        under.  ``None`` for noiseless / non-circuit runs.
    shards, shard_backend, device:
        Sharded-execution provenance echoed from
        :class:`~repro.core.backends.BackendResult`: how many shards the
        engine's batch/trajectory axis was split across, the worker flavour
        (:data:`~repro.quantum.sharding.SHARD_BACKENDS`) and where they ran
        (``"cpu"`` / ``"cuda:<ordinals>"``).  ``None`` for unsharded runs.
    """

    betti_estimate: float
    betti_rounded: int
    p_zero: float
    num_system_qubits: int
    precision_qubits: int
    shots: Optional[int]
    backend: str
    exact_betti: Optional[int] = None
    counts: Dict[str, int] = field(default_factory=dict)
    lambda_max: float = 0.0
    delta: float = 0.0
    betti_std: Optional[float] = None
    engine_route: Optional[str] = None
    fused_gates: Optional[int] = None
    n_trajectories: Optional[int] = None
    noise_spec: Optional[Dict[str, object]] = None
    shards: Optional[int] = None
    shard_backend: Optional[str] = None
    device: Optional[str] = None

    @property
    def absolute_error(self) -> Optional[float]:
        """``|β̃_k - β_k|`` (Eq. 12) when the exact value is known."""
        if self.exact_betti is None:
            return None
        return float(abs(self.betti_estimate - self.exact_betti))

    @property
    def rounded_error(self) -> Optional[int]:
        """``|round(β̃_k) - β_k|`` when the exact value is known."""
        if self.exact_betti is None:
            return None
        return int(abs(self.betti_rounded - self.exact_betti))

    def as_dict(self) -> Dict[str, object]:
        """Plain-dictionary view (used by the experiment drivers)."""
        return {
            "betti_estimate": self.betti_estimate,
            "betti_rounded": self.betti_rounded,
            "p_zero": self.p_zero,
            "num_system_qubits": self.num_system_qubits,
            "precision_qubits": self.precision_qubits,
            "shots": self.shots,
            "backend": self.backend,
            "exact_betti": self.exact_betti,
            "absolute_error": self.absolute_error,
            "rounded_error": self.rounded_error,
            "counts": dict(self.counts),
            "lambda_max": self.lambda_max,
            "delta": self.delta,
            "betti_std": self.betti_std,
            "engine_route": self.engine_route,
            "fused_gates": self.fused_gates,
            "n_trajectories": self.n_trajectories,
            "noise_spec": None if self.noise_spec is None else dict(self.noise_spec),
            "shards": self.shards,
            "shard_backend": self.shard_backend,
            "device": self.device,
        }


class QTDABettiEstimator:
    """Estimate Betti numbers of simplicial complexes with QPE.

    Parameters mirror :class:`repro.core.config.QTDAConfig`; either pass a
    ready-made config or keyword arguments (keywords override the config).

    Examples
    --------
    >>> from repro.tda import SimplicialComplex
    >>> complex_ = SimplicialComplex([(0,), (1,), (2,), (0, 1), (0, 2), (1, 2)])
    >>> estimator = QTDABettiEstimator(precision_qubits=4, shots=None)
    >>> estimator.estimate(complex_, k=1).betti_rounded   # the hollow triangle has one loop
    1
    """

    def __init__(
        self,
        config: Optional[QTDAConfig] = None,
        spectrum_cache: Optional[SpectrumCache] = None,
        **overrides,
    ):
        base = config if config is not None else QTDAConfig()
        self.config = base.replace(**overrides) if overrides else base
        self._rng = as_rng(self.config.seed)
        #: Optional shared cache of Laplacian spectra used by the spectral
        #: backends (see DESIGN.md §6); caching never changes results, only cost.
        self.spectrum_cache = spectrum_cache

    # -- public API -----------------------------------------------------------
    @property
    def backend(self):
        """The resolved :class:`repro.core.backends.BettiBackend` instance."""
        return get_backend(self.config.backend)

    @property
    def operator_format(self) -> str:
        """Operator format negotiated with the configured backend.

        The format :meth:`estimate` builds its Laplacians in (DESIGN.md §9);
        the service API stamps it into result provenance.
        """
        return preferred_format(self.backend)

    def estimate(self, complex_: SimplicialComplex, k: int, compute_exact: bool = True) -> BettiEstimate:
        """Estimate ``β_k`` of a simplicial complex.

        ``compute_exact=True`` also computes the classical Betti number for
        error reporting (cheap at the scales of the paper).
        """
        if not isinstance(complex_, SimplicialComplex):
            raise TypeError("estimate expects a SimplicialComplex; use estimate_from_laplacian for raw matrices")
        num_k = complex_.num_simplices(k)
        exact: Optional[int] = None
        if compute_exact:
            from repro.tda.betti import betti_number

            exact = betti_number(complex_, k)
        if num_k == 0:
            # No k-simplices: β_k = 0 by convention, nothing to run.
            return BettiEstimate(
                betti_estimate=0.0,
                betti_rounded=0,
                p_zero=0.0,
                num_system_qubits=0,
                precision_qubits=self.config.precision_qubits,
                shots=self.config.shots,
                backend=self.config.backend,
                exact_betti=exact,
                lambda_max=0.0,
                delta=self.config.delta,
            )
        laplacian = combinatorial_laplacian(
            complex_, k, sparse_format=self.operator_format == "sparse"
        )
        return self.estimate_from_laplacian(laplacian, exact_betti=exact)

    def estimate_from_laplacian(self, laplacian: np.ndarray, exact_betti: Optional[int] = None) -> BettiEstimate:
        """Estimate the kernel dimension of an explicit combinatorial Laplacian.

        Accepts dense matrices, ``scipy.sparse`` matrices and
        :class:`~repro.core.operators.LaplacianOperator` objects (including
        matrix-free ones).  The configured backend is resolved through the
        registry and handed an
        :class:`~repro.core.backends.EstimationProblem` (the Laplacian
        operator plus the shared spectrum cache, when one is attached); shot
        sampling of the returned distribution happens here so it is identical
        across backends.
        """
        if exact_betti is None:
            exact_betti_val: Optional[int] = None
        else:
            exact_betti_val = int(exact_betti)
        problem = EstimationProblem(laplacian=laplacian, spectrum_cache=self.spectrum_cache)
        result = self.backend.run(problem, self.config, self._rng)
        p_zero, counts = self._readout(result.distribution)
        dim = 2**result.num_system_qubits
        estimate = dim * p_zero
        betti_std = None if result.p_zero_std is None else float(dim * result.p_zero_std)
        return BettiEstimate(
            betti_estimate=float(estimate),
            betti_rounded=int(round(estimate)),
            p_zero=float(p_zero),
            num_system_qubits=result.num_system_qubits,
            precision_qubits=self.config.precision_qubits,
            shots=self.config.shots,
            backend=self.config.backend,
            exact_betti=exact_betti_val,
            counts=counts,
            lambda_max=result.lambda_max,
            delta=self.config.delta,
            betti_std=betti_std,
            engine_route=result.engine_route,
            fused_gates=result.fused_gates,
            n_trajectories=result.n_trajectories,
            noise_spec=result.noise_spec,
            shards=result.shards,
            shard_backend=result.shard_backend,
            device=result.device,
        )

    def estimate_betti_numbers(
        self, complex_: SimplicialComplex, dimensions: Sequence[int], compute_exact: bool = True
    ) -> List[BettiEstimate]:
        """Estimate several Betti numbers of the same complex (e.g. ``[0, 1]``)."""
        return [self.estimate(complex_, k, compute_exact=compute_exact) for k in dimensions]

    # -- readout ----------------------------------------------------------------
    def _readout(self, distribution: np.ndarray) -> tuple[float, Dict[str, int]]:
        """Exact or sampled probability of the all-zero precision readout."""
        distribution = np.asarray(distribution, dtype=float)
        if self.config.shots is None:
            return float(distribution[0]), {}
        num_bits = int(np.log2(distribution.size))
        counts = sample_counts(distribution, self.config.shots, num_bits=num_bits, seed=self._rng)
        zero_key = "0" * num_bits
        return counts.get(zero_key, 0) / self.config.shots, counts
