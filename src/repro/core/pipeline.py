"""End-to-end feature-extraction pipeline (Section 5).

The paper's machine-learning experiments turn raw data into Betti-number
features in two flavours:

* *time-series route*: a 500-sample window is delay-embedded (Takens) into a
  point cloud, a Rips complex is built at grouping scale ``ε`` and
  ``{β̃_0, β̃_1}`` are estimated with the quantum algorithm;
* *tabular route*: each six-dimensional feature row is turned into a tiny
  four-point 3-D cloud (three features at a time), from which the same Betti
  features are extracted.

:class:`QTDAPipeline` implements both, with the estimator backend and all QPE
parameters configurable through :class:`repro.core.config.QTDAConfig`.  The
pipeline never inspects the backend name: any backend registered with
:func:`repro.core.backends.register_backend` (including ``sparse-exact`` and
``noisy-density``) flows through unchanged via the estimator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import QTDAConfig
from repro.core.estimator import BettiEstimate, QTDABettiEstimator
from repro.tda.betti import betti_number
from repro.tda.rips import RipsComplex
from repro.tda.takens import TakensEmbedding


@dataclass
class PipelineConfig:
    """Configuration of the point-cloud-to-features pipeline.

    Attributes
    ----------
    epsilon:
        Grouping scale ``ε`` for the Rips complex.
    homology_dimensions:
        Which Betti numbers to extract (the paper uses ``(0, 1)``).
    max_complex_dimension:
        Largest simplex dimension in the Rips complex; must be at least
        ``max(homology_dimensions) + 1`` so that the relevant Laplacians see
        the "up" boundary term.
    takens_dimension, takens_delay, takens_stride:
        Delay-embedding parameters for the time-series route.
    use_quantum:
        When false, the exact classical Betti numbers are used as features —
        the "actual Betti numbers" rows/curves of Table 1 and Fig. 4.
    estimator:
        QPE estimator configuration (precision qubits, shots, backend, ...).
    """

    epsilon: float = 1.0
    homology_dimensions: Tuple[int, ...] = (0, 1)
    max_complex_dimension: Optional[int] = None
    takens_dimension: int = 3
    takens_delay: int = 2
    takens_stride: int = 1
    use_quantum: bool = True
    estimator: QTDAConfig = field(default_factory=QTDAConfig)

    def __post_init__(self):
        self.epsilon = float(self.epsilon)
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self.homology_dimensions = tuple(int(k) for k in self.homology_dimensions)
        if not self.homology_dimensions:
            raise ValueError("homology_dimensions must not be empty")
        if any(k < 0 for k in self.homology_dimensions):
            raise ValueError("homology dimensions must be non-negative")
        if self.max_complex_dimension is None:
            self.max_complex_dimension = max(self.homology_dimensions) + 1
        if self.max_complex_dimension < max(self.homology_dimensions) + 1:
            raise ValueError(
                "max_complex_dimension must be at least max(homology_dimensions) + 1"
            )

    def as_dict(self) -> dict:
        """Plain-dictionary view, round-trippable through :meth:`from_dict`.

        The nested estimator config serialises through
        :meth:`repro.core.config.QTDAConfig.as_dict` (and therefore rejects
        explicit ``noise_model`` objects — use the declarative
        ``noise_channel``/``noise_strength`` fields).
        """
        from dataclasses import fields as dc_fields

        data = {f.name: getattr(self, f.name) for f in dc_fields(self) if f.name != "estimator"}
        data["estimator"] = self.estimator.as_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "PipelineConfig":
        """Inverse of :meth:`as_dict` (re-runs all field validation)."""
        data = dict(data)
        estimator = data.pop("estimator", None)
        if estimator is not None and not isinstance(estimator, QTDAConfig):
            estimator = QTDAConfig.from_dict(dict(estimator))
        if estimator is not None:
            data["estimator"] = estimator
        return cls(**data)


def apply_pipeline_overrides(base: PipelineConfig, overrides: dict) -> PipelineConfig:
    """``dataclasses.replace`` with one wrinkle: ``max_complex_dimension`` is
    re-derived when only ``homology_dimensions`` is overridden.

    The base config's ``__post_init__`` has already resolved
    ``max_complex_dimension`` to a concrete integer, so carrying it through a
    plain ``replace`` would pin the override to the *old* homology dimensions
    (e.g. ``homology_dimensions=(0, 1, 2)`` against a resolved
    ``max_complex_dimension=2`` raises).
    """
    if not overrides:
        return base
    from dataclasses import replace

    if "homology_dimensions" in overrides and "max_complex_dimension" not in overrides:
        overrides = dict(overrides, max_complex_dimension=None)
    return replace(base, **overrides)


class QTDAPipeline:
    """Extract (estimated) Betti-number features from point clouds or time series."""

    def __init__(self, config: Optional[PipelineConfig] = None, **overrides):
        base = config if config is not None else PipelineConfig()
        base = apply_pipeline_overrides(base, overrides)
        self.config = base
        self._estimator = QTDABettiEstimator(base.estimator)
        self._takens = TakensEmbedding(
            dimension=base.takens_dimension,
            delay=base.takens_delay,
            stride=base.takens_stride,
        )
        self._engine = None  # lazily built QTDAService (see _service)

    # -- single-sample features -------------------------------------------------
    def features_from_point_cloud(self, points: np.ndarray, epsilon: Optional[float] = None) -> np.ndarray:
        """Betti-feature vector of one point cloud (one value per homology dimension)."""
        eps = self.config.epsilon if epsilon is None else float(epsilon)
        complex_ = RipsComplex.from_points(
            np.asarray(points, dtype=float), eps, max_dimension=self.config.max_complex_dimension
        ).complex()
        values: List[float] = []
        for k in self.config.homology_dimensions:
            if self.config.use_quantum:
                estimate = self._estimator.estimate(complex_, k, compute_exact=False)
                values.append(float(estimate.betti_estimate))
            else:
                values.append(float(betti_number(complex_, k)))
        return np.asarray(values, dtype=float)

    def estimates_from_point_cloud(self, points: np.ndarray, epsilon: Optional[float] = None) -> List[BettiEstimate]:
        """Full :class:`BettiEstimate` objects (with exact values) for one cloud."""
        eps = self.config.epsilon if epsilon is None else float(epsilon)
        complex_ = RipsComplex.from_points(
            np.asarray(points, dtype=float), eps, max_dimension=self.config.max_complex_dimension
        ).complex()
        return self._estimator.estimate_betti_numbers(complex_, self.config.homology_dimensions)

    def features_from_time_series(self, series: np.ndarray, epsilon: Optional[float] = None) -> np.ndarray:
        """Delay-embed a scalar time series, then extract the Betti features."""
        cloud = self._takens.transform(np.asarray(series, dtype=float))
        return self.features_from_point_cloud(cloud, epsilon=epsilon)

    # -- batch features -----------------------------------------------------------
    def _service(self):
        """The lazily built :class:`repro.core.api.QTDAService` behind the batch methods.

        Built on first use (the import is deferred to avoid a module cycle)
        and kept for the pipeline's lifetime so the service's spectrum and
        result caches persist across calls — the same lifetime the
        pre-service batch engine had.
        """
        if self._engine is None:
            from repro.core.api import QTDAService

            # result_cache_size=0: the pre-service engine recomputed every
            # call, and caching here would pin full input datasets (requests
            # carry the clouds) for the pipeline's lifetime.  The spectrum
            # cache — which stores only small eigendecompositions — is the
            # reuse layer that matters, exactly as before.  The typed
            # boundary costs one O(dataset) tuple round trip per call; hot
            # loops that cannot afford it should use BatchFeatureEngine
            # directly.
            self._engine = QTDAService(result_cache_size=0)
        return self._engine

    def transform_point_clouds(self, clouds: Sequence[np.ndarray], epsilon: Optional[float] = None) -> np.ndarray:
        """Feature matrix (one row per cloud).

        Thin shim over the service API: builds a
        :class:`repro.core.api.PipelineRequest` and returns the result
        payload's feature matrix, bit-identical to the pre-service engine
        path (pinned by regression tests).  Sample ``i`` runs with the
        derived seed ``derive_seed(estimator.seed, i)``, so the result is
        reproducible per sample and identical to what the parallel engine
        backends produce for the same configuration.
        """
        from repro.core.api import PipelineRequest

        request = PipelineRequest(
            point_clouds=tuple(np.asarray(c, dtype=float) for c in clouds),
            epsilon=epsilon,
            pipeline=self.config,
        )
        return self._service().run(request).payload["features"]

    def transform_time_series(self, batch: np.ndarray, epsilon: Optional[float] = None) -> np.ndarray:
        """Feature matrix for a batch of time series (one series per row).

        Shim over the service API, like :meth:`transform_point_clouds`.
        """
        from repro.core.api import PipelineRequest

        request = PipelineRequest(
            time_series=np.asarray(batch, dtype=float),
            epsilon=epsilon,
            pipeline=self.config,
        )
        return self._service().run(request).payload["features"]

    @property
    def feature_names(self) -> Tuple[str, ...]:
        """Names of the emitted feature columns (``betti_0``, ``betti_1``, ...)."""
        return tuple(f"betti_{k}" for k in self.config.homology_dimensions)


def betti_feature_vector(
    points: np.ndarray,
    epsilon: float,
    homology_dimensions: Sequence[int] = (0, 1),
    use_quantum: bool = True,
    estimator_config: Optional[QTDAConfig] = None,
) -> np.ndarray:
    """One-call convenience wrapper around :class:`QTDAPipeline` for a single cloud."""
    config = PipelineConfig(
        epsilon=epsilon,
        homology_dimensions=tuple(homology_dimensions),
        use_quantum=use_quantum,
        estimator=estimator_config if estimator_config is not None else QTDAConfig(),
    )
    return QTDAPipeline(config).features_from_point_cloud(points)
