"""End-to-end feature-extraction pipeline (Section 5).

The paper's machine-learning experiments turn raw data into Betti-number
features in two flavours:

* *time-series route*: a 500-sample window is delay-embedded (Takens) into a
  point cloud, a Rips complex is built at grouping scale ``ε`` and
  ``{β̃_0, β̃_1}`` are estimated with the quantum algorithm;
* *tabular route*: each six-dimensional feature row is turned into a tiny
  four-point 3-D cloud (three features at a time), from which the same Betti
  features are extracted.

:class:`QTDAPipeline` implements both, with the estimator backend and all QPE
parameters configurable through :class:`repro.core.config.QTDAConfig`.  The
pipeline never inspects the backend name: any backend registered with
:func:`repro.core.backends.register_backend` (including ``sparse-exact`` and
``noisy-density``) flows through unchanged via the estimator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import QTDAConfig
from repro.core.estimator import BettiEstimate, QTDABettiEstimator
from repro.tda.betti import betti_number
from repro.tda.rips import RipsComplex
from repro.tda.takens import TakensEmbedding


@dataclass
class PipelineConfig:
    """Configuration of the point-cloud-to-features pipeline.

    Attributes
    ----------
    epsilon:
        Grouping scale ``ε`` for the Rips complex.
    homology_dimensions:
        Which Betti numbers to extract (the paper uses ``(0, 1)``).
    max_complex_dimension:
        Largest simplex dimension in the Rips complex; must be at least
        ``max(homology_dimensions) + 1`` so that the relevant Laplacians see
        the "up" boundary term.
    takens_dimension, takens_delay, takens_stride:
        Delay-embedding parameters for the time-series route.
    use_quantum:
        When false, the exact classical Betti numbers are used as features —
        the "actual Betti numbers" rows/curves of Table 1 and Fig. 4.
    estimator:
        QPE estimator configuration (precision qubits, shots, backend, ...).
    """

    epsilon: float = 1.0
    homology_dimensions: Tuple[int, ...] = (0, 1)
    max_complex_dimension: Optional[int] = None
    takens_dimension: int = 3
    takens_delay: int = 2
    takens_stride: int = 1
    use_quantum: bool = True
    estimator: QTDAConfig = field(default_factory=QTDAConfig)

    def __post_init__(self):
        self.epsilon = float(self.epsilon)
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self.homology_dimensions = tuple(int(k) for k in self.homology_dimensions)
        if not self.homology_dimensions:
            raise ValueError("homology_dimensions must not be empty")
        if any(k < 0 for k in self.homology_dimensions):
            raise ValueError("homology dimensions must be non-negative")
        if self.max_complex_dimension is None:
            self.max_complex_dimension = max(self.homology_dimensions) + 1
        if self.max_complex_dimension < max(self.homology_dimensions) + 1:
            raise ValueError(
                "max_complex_dimension must be at least max(homology_dimensions) + 1"
            )


def apply_pipeline_overrides(base: PipelineConfig, overrides: dict) -> PipelineConfig:
    """``dataclasses.replace`` with one wrinkle: ``max_complex_dimension`` is
    re-derived when only ``homology_dimensions`` is overridden.

    The base config's ``__post_init__`` has already resolved
    ``max_complex_dimension`` to a concrete integer, so carrying it through a
    plain ``replace`` would pin the override to the *old* homology dimensions
    (e.g. ``homology_dimensions=(0, 1, 2)`` against a resolved
    ``max_complex_dimension=2`` raises).
    """
    if not overrides:
        return base
    from dataclasses import replace

    if "homology_dimensions" in overrides and "max_complex_dimension" not in overrides:
        overrides = dict(overrides, max_complex_dimension=None)
    return replace(base, **overrides)


class QTDAPipeline:
    """Extract (estimated) Betti-number features from point clouds or time series."""

    def __init__(self, config: Optional[PipelineConfig] = None, **overrides):
        base = config if config is not None else PipelineConfig()
        base = apply_pipeline_overrides(base, overrides)
        self.config = base
        self._estimator = QTDABettiEstimator(base.estimator)
        self._takens = TakensEmbedding(
            dimension=base.takens_dimension,
            delay=base.takens_delay,
            stride=base.takens_stride,
        )
        self._engine = None  # lazily built serial BatchFeatureEngine

    # -- single-sample features -------------------------------------------------
    def features_from_point_cloud(self, points: np.ndarray, epsilon: Optional[float] = None) -> np.ndarray:
        """Betti-feature vector of one point cloud (one value per homology dimension)."""
        eps = self.config.epsilon if epsilon is None else float(epsilon)
        complex_ = RipsComplex.from_points(
            np.asarray(points, dtype=float), eps, max_dimension=self.config.max_complex_dimension
        ).complex()
        values: List[float] = []
        for k in self.config.homology_dimensions:
            if self.config.use_quantum:
                estimate = self._estimator.estimate(complex_, k, compute_exact=False)
                values.append(float(estimate.betti_estimate))
            else:
                values.append(float(betti_number(complex_, k)))
        return np.asarray(values, dtype=float)

    def estimates_from_point_cloud(self, points: np.ndarray, epsilon: Optional[float] = None) -> List[BettiEstimate]:
        """Full :class:`BettiEstimate` objects (with exact values) for one cloud."""
        eps = self.config.epsilon if epsilon is None else float(epsilon)
        complex_ = RipsComplex.from_points(
            np.asarray(points, dtype=float), eps, max_dimension=self.config.max_complex_dimension
        ).complex()
        return self._estimator.estimate_betti_numbers(complex_, self.config.homology_dimensions)

    def features_from_time_series(self, series: np.ndarray, epsilon: Optional[float] = None) -> np.ndarray:
        """Delay-embed a scalar time series, then extract the Betti features."""
        cloud = self._takens.transform(np.asarray(series, dtype=float))
        return self.features_from_point_cloud(cloud, epsilon=epsilon)

    # -- batch features -----------------------------------------------------------
    def _batch_engine(self):
        """The serial :class:`repro.core.batch.BatchFeatureEngine` behind the batch methods.

        Built lazily (the import is deferred to avoid a module cycle) and
        kept for the pipeline's lifetime so its spectrum cache persists
        across calls.
        """
        if self._engine is None:
            from repro.core.batch import BatchFeatureEngine

            self._engine = BatchFeatureEngine(self.config)
        return self._engine

    def transform_point_clouds(self, clouds: Sequence[np.ndarray], epsilon: Optional[float] = None) -> np.ndarray:
        """Feature matrix (one row per cloud).

        Delegates to the batch engine's serial backend; sample ``i`` runs with
        the derived seed ``derive_seed(estimator.seed, i)``, so the result is
        reproducible per sample and identical to what the parallel engine
        backends produce for the same configuration.
        """
        return self._batch_engine().transform_point_clouds(clouds, epsilon=epsilon)

    def transform_time_series(self, batch: np.ndarray, epsilon: Optional[float] = None) -> np.ndarray:
        """Feature matrix for a batch of time series (one series per row)."""
        return self._batch_engine().transform_time_series(batch, epsilon=epsilon)

    @property
    def feature_names(self) -> Tuple[str, ...]:
        """Names of the emitted feature columns (``betti_0``, ``betti_1``, ...)."""
        return tuple(f"betti_{k}" for k in self.config.homology_dimensions)


def betti_feature_vector(
    points: np.ndarray,
    epsilon: float,
    homology_dimensions: Sequence[int] = (0, 1),
    use_quantum: bool = True,
    estimator_config: Optional[QTDAConfig] = None,
) -> np.ndarray:
    """One-call convenience wrapper around :class:`QTDAPipeline` for a single cloud."""
    config = PipelineConfig(
        epsilon=epsilon,
        homology_dimensions=tuple(homology_dimensions),
        use_quantum=use_quantum,
        estimator=estimator_config if estimator_config is not None else QTDAConfig(),
    )
    return QTDAPipeline(config).features_from_point_cloud(points)
