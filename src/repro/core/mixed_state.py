"""Maximally-mixed-state preparation (Fig. 2).

The QTDA algorithm runs QPE with the system register in the maximally mixed
state ``I / 2^q``, so that each eigenvector of the Laplacian is sampled with
equal weight and the probability of reading phase 0 equals
``(number of zero eigenvalues) / 2^q``.

On a gate-based device the mixed state is prepared by *purification*: add
``q`` auxiliary qubits, put each auxiliary in ``|+>`` with a Hadamard, and
CNOT it onto the corresponding system qubit.  Tracing out the auxiliaries
leaves the system maximally mixed — this is exactly the circuit of Fig. 2.
"""

from __future__ import annotations

from repro.quantum.circuit import QuantumCircuit
from repro.utils.validation import check_positive_integer


def mixed_state_purification_qubits(num_system_qubits: int) -> int:
    """Number of auxiliary qubits needed by the Fig. 2 construction (= ``q``)."""
    return check_positive_integer(num_system_qubits, "num_system_qubits")


def maximally_mixed_state_circuit(
    num_system_qubits: int,
    system_offset: int = 0,
    auxiliary_offset: int | None = None,
    total_qubits: int | None = None,
) -> QuantumCircuit:
    """Circuit that leaves the system register maximally mixed (Fig. 2).

    Parameters
    ----------
    num_system_qubits:
        Size ``q`` of the system register.
    system_offset:
        Index of the first system qubit inside the full register.
    auxiliary_offset:
        Index of the first auxiliary qubit; defaults to the qubit right after
        the system register.
    total_qubits:
        Total register size of the returned circuit; defaults to the minimum
        needed (``system_offset + 2q`` or as implied by the offsets).

    Returns
    -------
    QuantumCircuit
        For each pair ``(aux_i, sys_i)``: ``H`` on the auxiliary followed by
        ``CNOT(aux_i -> sys_i)``, creating ``q`` Bell pairs.  The reduced
        state of the system register is ``I/2^q``.
    """
    q = check_positive_integer(num_system_qubits, "num_system_qubits")
    system_offset = int(system_offset)
    if auxiliary_offset is None:
        auxiliary_offset = system_offset + q
    auxiliary_offset = int(auxiliary_offset)
    needed = max(system_offset + q, auxiliary_offset + q)
    total = needed if total_qubits is None else int(total_qubits)
    if total < needed:
        raise ValueError(f"total_qubits={total} is too small; need at least {needed}")
    system = list(range(system_offset, system_offset + q))
    auxiliary = list(range(auxiliary_offset, auxiliary_offset + q))
    if set(system) & set(auxiliary):
        raise ValueError("System and auxiliary registers overlap")

    circ = QuantumCircuit(total, name="mixed-state-prep")
    for aux, sys_q in zip(auxiliary, system):
        circ.h(aux)
        circ.cnot(aux, sys_q)
    circ.barrier(label="I/2^q prepared")
    return circ
