"""``repro.api`` — re-export of the service-grade front door.

The implementation lives in :mod:`repro.core.api` (it is part of the core
algorithm package and reuses its estimator/engine internals); this module is
the stable import location the quick-start and external callers use::

    from repro.api import EstimationRequest, QTDAService

See DESIGN.md §10 for the request/response schema and service semantics.
"""

from repro.core.api import (
    EXPERIMENT_NAMES,
    REQUEST_KINDS,
    SCHEMA_VERSION,
    EstimationRequest,
    EstimationResult,
    ExperimentRequest,
    ObserveRequest,
    PipelineRequest,
    Provenance,
    QTDAService,
    Request,
    SweepRequest,
    canonical_json,
    describe_backends,
    deterministic_request,
    request_from_dict,
)

__all__ = [
    "SCHEMA_VERSION",
    "REQUEST_KINDS",
    "EXPERIMENT_NAMES",
    "EstimationRequest",
    "PipelineRequest",
    "SweepRequest",
    "ExperimentRequest",
    "ObserveRequest",
    "Request",
    "request_from_dict",
    "deterministic_request",
    "Provenance",
    "EstimationResult",
    "QTDAService",
    "describe_backends",
    "canonical_json",
]
