"""Linear combinations of Pauli strings (Hamiltonians).

The rescaled, padded combinatorial Laplacian ``H`` is expanded as
``H = Σ_P c_P P`` (Eq. 19 of the paper).  :class:`PauliSum` is the container
that holds such an expansion and is consumed by the Trotterised circuit
synthesiser in :mod:`repro.quantum.trotter`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Sequence, Tuple

import numpy as np

from repro.paulis.pauli import PauliString


@dataclass(frozen=True)
class PauliTerm:
    """A single weighted Pauli string ``coefficient * label``."""

    label: str
    coefficient: complex

    @property
    def pauli(self) -> PauliString:
        """The underlying (phase-free) Pauli string."""
        return PauliString(self.label)

    def to_matrix(self) -> np.ndarray:
        """Dense matrix ``coefficient * P``."""
        return self.coefficient * PauliString(self.label).to_matrix()

    def __repr__(self) -> str:
        return f"PauliTerm({self.coefficient:+.6g} * {self.label})"


class PauliSum:
    """A weighted sum of Pauli strings ``H = Σ_j c_j P_j``.

    Terms with the same label are merged; terms whose coefficient falls below
    ``tol`` are dropped.  The container behaves like a read-only sequence of
    :class:`PauliTerm` (iteration order is deterministic: sorted by label).
    """

    def __init__(self, terms: Mapping[str, complex] | Iterable[Tuple[str, complex]] = (), tol: float = 1e-12):
        self._tol = float(tol)
        data: Dict[str, complex] = {}
        items = terms.items() if isinstance(terms, Mapping) else terms
        num_qubits = None
        for label, coeff in items:
            label = str(label).upper()
            # Validate through PauliString (raises on bad labels).
            ps = PauliString(label)
            if num_qubits is None:
                num_qubits = ps.num_qubits
            elif ps.num_qubits != num_qubits:
                raise ValueError("All terms of a PauliSum must act on the same number of qubits")
            data[label] = data.get(label, 0.0) + complex(coeff)
        self._terms: Dict[str, complex] = {
            label: coeff for label, coeff in data.items() if abs(coeff) > self._tol
        }
        self._num_qubits = num_qubits

    # -- constructors ------------------------------------------------------
    @classmethod
    def zero(cls, num_qubits: int) -> "PauliSum":
        """The zero operator on ``num_qubits`` qubits."""
        s = cls()
        s._num_qubits = int(num_qubits)
        return s

    @classmethod
    def from_terms(cls, terms: Sequence[PauliTerm]) -> "PauliSum":
        """Build from a sequence of :class:`PauliTerm`."""
        return cls([(t.label, t.coefficient) for t in terms])

    # -- properties --------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Register size; zero-term sums remember the size they were built for."""
        if self._num_qubits is None:
            raise ValueError("Empty PauliSum has no defined register size")
        return self._num_qubits

    @property
    def num_terms(self) -> int:
        """Number of surviving (non-negligible) terms."""
        return len(self._terms)

    def coefficient(self, label: str) -> complex:
        """Coefficient of ``label`` (0 if absent)."""
        return self._terms.get(str(label).upper(), 0.0)

    def coefficients(self) -> Dict[str, complex]:
        """Copy of the label -> coefficient mapping."""
        return dict(self._terms)

    def terms(self) -> Tuple[PauliTerm, ...]:
        """Terms sorted by label for deterministic iteration."""
        return tuple(PauliTerm(label, self._terms[label]) for label in sorted(self._terms))

    @property
    def is_hermitian(self) -> bool:
        """True when every coefficient is (numerically) real."""
        return all(abs(c.imag) <= 1e-10 for c in self._terms.values())

    def one_norm(self) -> float:
        """``Σ_j |c_j|`` — useful as a crude Trotter-error scale."""
        return float(sum(abs(c) for c in self._terms.values()))

    # -- arithmetic ---------------------------------------------------------
    def __add__(self, other: "PauliSum") -> "PauliSum":
        if not isinstance(other, PauliSum):
            return NotImplemented
        merged = dict(self._terms)
        for label, coeff in other._terms.items():
            merged[label] = merged.get(label, 0.0) + coeff
        out = PauliSum(merged, tol=self._tol)
        out._num_qubits = self._num_qubits if self._num_qubits is not None else other._num_qubits
        return out

    def __sub__(self, other: "PauliSum") -> "PauliSum":
        return self + (other * -1.0)

    def __mul__(self, scalar: complex) -> "PauliSum":
        if not isinstance(scalar, (int, float, complex)):
            return NotImplemented
        out = PauliSum({label: coeff * scalar for label, coeff in self._terms.items()}, tol=self._tol)
        out._num_qubits = self._num_qubits
        return out

    __rmul__ = __mul__

    # -- realisation --------------------------------------------------------
    def to_matrix(self) -> np.ndarray:
        """Dense ``2^n x 2^n`` matrix of the sum."""
        n = self.num_qubits
        dim = 2**n
        mat = np.zeros((dim, dim), dtype=complex)
        for label, coeff in self._terms.items():
            mat += coeff * PauliString(label).to_matrix()
        return mat

    def identity_coefficient(self) -> complex:
        """Coefficient of the all-identity string (the global-phase generator)."""
        if self._num_qubits is None:
            return 0.0
        return self.coefficient("I" * self._num_qubits)

    def without_identity(self) -> "PauliSum":
        """Copy with the all-identity term removed.

        Dropping the identity term only changes ``exp(iH)`` by a global phase,
        which is unobservable for the (uncontrolled) mixed-state QTDA circuit
        but must be restored for controlled applications inside QPE — the
        trotteriser handles that explicitly.
        """
        if self._num_qubits is None:
            return self
        label = "I" * self._num_qubits
        remaining = {k: v for k, v in self._terms.items() if k != label}
        out = PauliSum(remaining, tol=self._tol)
        out._num_qubits = self._num_qubits
        return out

    # -- plumbing ------------------------------------------------------------
    def __iter__(self) -> Iterator[PauliTerm]:
        return iter(self.terms())

    def __len__(self) -> int:
        return self.num_terms

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PauliSum):
            return NotImplemented
        labels = set(self._terms) | set(other._terms)
        return all(np.isclose(self.coefficient(l), other.coefficient(l)) for l in labels)

    def __repr__(self) -> str:
        parts = [f"{c:+.4g}*{l}" for l, c in sorted(self._terms.items())[:6]]
        suffix = " + ..." if self.num_terms > 6 else ""
        return f"PauliSum({' '.join(parts)}{suffix})"
