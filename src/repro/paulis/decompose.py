"""Pauli decomposition of Hermitian matrices.

Any ``2^q x 2^q`` Hermitian matrix ``H`` can be written as

    H = Σ_P c_P P,     c_P = Tr(P H) / 2^q,

with ``P`` ranging over the ``4^q`` Pauli strings.  The paper uses this to
turn the padded combinatorial Laplacian into the gate sequence of Fig. 7
(Eq. 19 lists the decomposition for the worked example).

The implementation avoids building each of the ``4^q`` Pauli matrices.  It
uses the tensor-network identity that the Pauli transform factorises per
qubit: reshaping ``H`` into a rank-``2q`` tensor and contracting one qubit at
a time with the fixed ``4 x 2 x 2`` Pauli tensor turns the whole transform
into ``q`` small ``einsum`` contractions — ``O(q · 8^q)`` work instead of
``O(16^q)`` for the naive trace loop.
"""

from __future__ import annotations

from itertools import product
from typing import Dict

import numpy as np

from repro.paulis.pauli import PAULI_LABELS, PAULI_MATRICES
from repro.paulis.pauli_sum import PauliSum
from repro.utils.validation import check_square_matrix

#: Stacked single-qubit Pauli basis, indexed [pauli, row, col].
_PAULI_TENSOR = np.stack([PAULI_MATRICES[l] for l in PAULI_LABELS])


def _num_qubits_for(dim: int) -> int:
    q = int(np.log2(dim))
    if 2**q != dim:
        raise ValueError(f"Matrix dimension {dim} is not a power of two; pad it first")
    return q


def pauli_decompose(matrix: np.ndarray, tol: float = 1e-12) -> PauliSum:
    """Expand a Hermitian (or general) matrix in the Pauli-string basis.

    Parameters
    ----------
    matrix:
        Square ``2^q x 2^q`` array.  Hermiticity is not required — the
        coefficients of a non-Hermitian matrix are simply complex.
    tol:
        Coefficients with magnitude below ``tol`` are dropped.

    Returns
    -------
    PauliSum
        The decomposition ``Σ_P c_P P`` with ``c_P = Tr(P H)/2^q``.
    """
    mat = check_square_matrix(matrix, "matrix").astype(complex)
    dim = mat.shape[0]
    q = _num_qubits_for(dim)

    # Reshape into a rank-2q tensor with row/col indices interleaved per qubit:
    # axes (r_0, r_1, ..., r_{q-1}, c_0, ..., c_{q-1}).
    tensor = mat.reshape([2] * (2 * q))
    # Bring each qubit's (row, col) pair together: (r_0, c_0, r_1, c_1, ...).
    perm = [axis for pair in ((i, q + i) for i in range(q)) for axis in pair]
    tensor = np.transpose(tensor, perm)

    # Contract qubit-by-qubit with the Pauli tensor.  After processing qubit j
    # the leading axes are Pauli indices p_0..p_j and the trailing axes the
    # remaining (row, col) pairs.
    for j in range(q):
        # The current (row, col) pair of qubit j sits at axes (j, j+1):
        # axes 0..j-1 are already Pauli indices.  Tr(P H) contracts P_{c r}
        # against H_{r c}, hence the transposed index order on the Pauli tensor
        # (this matters for Y, which is antisymmetric).
        tensor = np.einsum("pcr,...rc->...p", _PAULI_TENSOR, np.moveaxis(tensor, (j, j + 1), (-2, -1)))
        # Move the freshly created Pauli axis into position j.
        tensor = np.moveaxis(tensor, -1, j)
    coeffs = tensor / dim  # divide by 2^q (Hilbert–Schmidt normalisation)

    terms: Dict[str, complex] = {}
    it = np.nditer(coeffs, flags=["multi_index"])
    for value in it:
        c = complex(value)
        if abs(c) <= tol:
            continue
        label = "".join(PAULI_LABELS[i] for i in it.multi_index)
        terms[label] = c
    out = PauliSum(terms, tol=tol)
    if out.num_terms == 0:
        out = PauliSum.zero(q)
    return out


def pauli_decompose_dense(matrix: np.ndarray, tol: float = 1e-12) -> PauliSum:
    """Reference implementation using explicit traces against each Pauli matrix.

    Exponentially slower than :func:`pauli_decompose`; retained for testing
    and for readers following the textbook definition line by line.
    """
    mat = check_square_matrix(matrix, "matrix").astype(complex)
    dim = mat.shape[0]
    q = _num_qubits_for(dim)
    terms: Dict[str, complex] = {}
    for labels in product(PAULI_LABELS, repeat=q):
        label = "".join(labels)
        pauli_mat = PAULI_MATRICES[labels[0]]
        for l in labels[1:]:
            pauli_mat = np.kron(pauli_mat, PAULI_MATRICES[l])
        coeff = np.trace(pauli_mat @ mat) / dim
        if abs(coeff) > tol:
            terms[label] = complex(coeff)
    out = PauliSum(terms, tol=tol)
    if out.num_terms == 0:
        out = PauliSum.zero(q)
    return out


def pauli_reconstruct(pauli_sum: PauliSum) -> np.ndarray:
    """Inverse of :func:`pauli_decompose`: materialise ``Σ c_P P`` densely."""
    return pauli_sum.to_matrix()
