"""Pauli-algebra substrate.

The QTDA algorithm synthesises the time-evolution unitary ``U = exp(iH)``
from the Pauli decomposition of the (padded, rescaled) combinatorial
Laplacian, exactly as in Eq. (19) of the paper.  This subpackage provides the
algebra needed for that step:

* :class:`~repro.paulis.pauli.PauliString` — an n-qubit tensor product of
  ``I, X, Y, Z`` with a scalar phase, supporting multiplication, commutation
  checks and dense/sparse matrix realisation.
* :class:`~repro.paulis.pauli_sum.PauliSum` — a real/complex linear
  combination of Pauli strings (a Hamiltonian), with simplification,
  arithmetic and dense matrix realisation.
* :func:`~repro.paulis.decompose.pauli_decompose` — expansion of an arbitrary
  Hermitian matrix in the Pauli basis via the Hilbert–Schmidt inner product.
* :func:`~repro.paulis.gershgorin.gershgorin_bound` — the Gershgorin-circle
  estimate of the largest eigenvalue used to pad and rescale the Laplacian.
"""

from repro.paulis.pauli import PAULI_LABELS, PAULI_MATRICES, PauliString
from repro.paulis.pauli_sum import PauliSum, PauliTerm
from repro.paulis.decompose import pauli_decompose, pauli_reconstruct
from repro.paulis.gershgorin import gershgorin_bound, gershgorin_intervals

__all__ = [
    "PAULI_LABELS",
    "PAULI_MATRICES",
    "PauliString",
    "PauliSum",
    "PauliTerm",
    "pauli_decompose",
    "pauli_reconstruct",
    "gershgorin_bound",
    "gershgorin_intervals",
]
