"""Gershgorin circle theorem estimates.

The paper pads the combinatorial Laplacian with an identity block scaled by
``λ̃_max / 2`` and rescales the spectrum into ``[0, 2π)`` using
``λ̃_max`` — *an estimate of the maximum eigenvalue obtained from the
Gershgorin circle theorem* (Eq. 7 and surrounding text).  For a real
symmetric matrix the theorem guarantees every eigenvalue lies in

    ⋃_i [a_ii - R_i, a_ii + R_i],   R_i = Σ_{j≠i} |a_ij|,

so ``max_i (a_ii + R_i)`` is a cheap upper bound on the spectral radius that
never requires diagonalisation.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.utils.validation import check_square_matrix


def gershgorin_intervals(matrix: np.ndarray) -> List[Tuple[float, float]]:
    """Return the Gershgorin interval ``(centre - radius, centre + radius)`` per row.

    Only meaningful for matrices with real spectra (symmetric/Hermitian); the
    function uses the real part of the diagonal as the centre.
    """
    mat = check_square_matrix(matrix, "matrix")
    diag = np.real(np.diag(mat))
    radii = np.sum(np.abs(mat), axis=1) - np.abs(np.diag(mat))
    return [(float(c - r), float(c + r)) for c, r in zip(diag, radii)]


def gershgorin_bound(matrix: np.ndarray) -> float:
    """Upper bound on the largest eigenvalue via the Gershgorin circle theorem.

    For the (positive semi-definite) combinatorial Laplacian this is the
    ``λ̃_max`` of Eq. 7.  The bound is clamped below at zero because the
    Laplacian spectrum is non-negative and the padding/rescaling logic expects
    a non-negative scale.
    """
    mat = check_square_matrix(matrix, "matrix")
    if mat.shape[0] == 0:
        return 0.0
    diag = np.real(np.diag(mat))
    radii = np.sum(np.abs(mat), axis=1) - np.abs(np.diag(mat))
    bound = float(np.max(diag + radii))
    return max(bound, 0.0)


def gershgorin_lower_bound(matrix: np.ndarray) -> float:
    """Lower bound on the smallest eigenvalue (companion of :func:`gershgorin_bound`)."""
    mat = check_square_matrix(matrix, "matrix")
    if mat.shape[0] == 0:
        return 0.0
    diag = np.real(np.diag(mat))
    radii = np.sum(np.abs(mat), axis=1) - np.abs(np.diag(mat))
    return float(np.min(diag - radii))
