"""Pauli strings on ``n`` qubits.

A Pauli string is a tensor product ``P = P_0 ⊗ P_1 ⊗ … ⊗ P_{n-1}`` with each
factor in ``{I, X, Y, Z}``.  Internally it is stored in the *symplectic*
representation — two boolean vectors ``(x, z)`` with

    P_j = i^{x_j z_j} X^{x_j} Z^{z_j}

— which makes products, commutation checks and phase tracking O(n) bit
operations instead of matrix algebra.  Dense matrices are only materialised
on demand (for small registers, as needed by the trotteriser and tests).
"""

from __future__ import annotations

from functools import reduce
from typing import Iterable, Tuple

import numpy as np

#: The four single-qubit Pauli operators in the conventional basis.
PAULI_MATRICES = {
    "I": np.array([[1, 0], [0, 1]], dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}

PAULI_LABELS = ("I", "X", "Y", "Z")

# Mapping from label to the (x, z) symplectic bits.
_LABEL_TO_XZ = {"I": (0, 0), "X": (1, 0), "Y": (1, 1), "Z": (0, 1)}
_XZ_TO_LABEL = {v: k for k, v in _LABEL_TO_XZ.items()}


class PauliString:
    """An n-qubit Pauli string with an explicit complex phase.

    Parameters
    ----------
    label:
        String such as ``"XXI"`` or ``"IZY"``; qubit 0 is the left-most
        character (matching the tensor-product order used in the paper's
        Eq. 19, where the first factor acts on the most significant qubit).
    phase:
        A complex scalar multiplying the string.  Products of Pauli strings
        accumulate phases in ``{±1, ±i}`` but arbitrary scalars are allowed.
    """

    __slots__ = ("_x", "_z", "_phase")

    def __init__(self, label: str, phase: complex = 1.0):
        label = str(label).upper()
        if not label or any(c not in _LABEL_TO_XZ for c in label):
            raise ValueError(f"Invalid Pauli label {label!r}; use characters from I, X, Y, Z")
        x_bits, z_bits = zip(*(_LABEL_TO_XZ[c] for c in label))
        self._x = np.array(x_bits, dtype=np.uint8)
        self._z = np.array(z_bits, dtype=np.uint8)
        self._phase = complex(phase)

    # -- constructors ------------------------------------------------------
    @classmethod
    def identity(cls, num_qubits: int) -> "PauliString":
        """The identity string ``I^{⊗ num_qubits}``."""
        if num_qubits < 1:
            raise ValueError("num_qubits must be >= 1")
        return cls("I" * num_qubits)

    @classmethod
    def from_xz(cls, x: Iterable[int], z: Iterable[int], phase: complex = 1.0) -> "PauliString":
        """Build a string from symplectic bit vectors."""
        x = np.asarray(list(x), dtype=np.uint8)
        z = np.asarray(list(z), dtype=np.uint8)
        if x.shape != z.shape or x.ndim != 1 or x.size == 0:
            raise ValueError("x and z must be equal-length non-empty 1-D bit vectors")
        label = "".join(_XZ_TO_LABEL[(int(a), int(b))] for a, b in zip(x, z))
        return cls(label, phase)

    @classmethod
    def single(cls, num_qubits: int, qubit: int, pauli: str, phase: complex = 1.0) -> "PauliString":
        """A string acting as ``pauli`` on ``qubit`` and identity elsewhere."""
        if not 0 <= qubit < num_qubits:
            raise ValueError(f"qubit {qubit} out of range for {num_qubits} qubits")
        chars = ["I"] * num_qubits
        chars[qubit] = pauli.upper()
        return cls("".join(chars), phase)

    # -- basic properties --------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Number of qubits the string acts on."""
        return int(self._x.size)

    @property
    def phase(self) -> complex:
        """The scalar phase carried by the string."""
        return self._phase

    @property
    def label(self) -> str:
        """The IXYZ label, without the phase."""
        return "".join(_XZ_TO_LABEL[(int(a), int(b))] for a, b in zip(self._x, self._z))

    @property
    def x(self) -> np.ndarray:
        """Copy of the symplectic X bit vector."""
        return self._x.copy()

    @property
    def z(self) -> np.ndarray:
        """Copy of the symplectic Z bit vector."""
        return self._z.copy()

    @property
    def weight(self) -> int:
        """Number of non-identity tensor factors."""
        return int(np.count_nonzero(self._x | self._z))

    @property
    def is_identity(self) -> bool:
        """True when every factor is ``I`` (phase ignored)."""
        return self.weight == 0

    def support(self) -> Tuple[int, ...]:
        """Indices of qubits on which the string acts non-trivially."""
        return tuple(int(i) for i in np.flatnonzero(self._x | self._z))

    # -- algebra -----------------------------------------------------------
    def with_phase(self, phase: complex) -> "PauliString":
        """Return a copy with the phase replaced by ``phase``."""
        return PauliString(self.label, phase)

    def __mul__(self, other: "PauliString | complex") -> "PauliString":
        if isinstance(other, (int, float, complex)):
            return PauliString(self.label, self._phase * other)
        if not isinstance(other, PauliString):
            return NotImplemented
        if other.num_qubits != self.num_qubits:
            raise ValueError("Cannot multiply Pauli strings on different register sizes")
        # Phase bookkeeping for (i^{x1 z1} X^{x1}Z^{z1}) (i^{x2 z2} X^{x2}Z^{z2}).
        x1, z1, x2, z2 = self._x, self._z, other._x, other._z
        # Moving Z^{z1} past X^{x2} contributes (-1)^{z1 x2}.
        sign_exponent = int(np.sum(z1 * x2))
        x_out = (x1 + x2) % 2
        z_out = (z1 + z2) % 2
        # i-powers: each factor's own definition i^{x z} and the output normalisation.
        # Cast to Python ints first: the bit vectors are unsigned and the
        # difference can be negative.
        i_power = (int(np.sum(x1 * z1)) + int(np.sum(x2 * z2)) - int(np.sum(x_out * z_out))) % 4
        phase = self._phase * other._phase * ((-1) ** sign_exponent) * (1j ** i_power)
        return PauliString.from_xz(x_out, z_out, phase)

    __rmul__ = __mul__

    def __neg__(self) -> "PauliString":
        return PauliString(self.label, -self._phase)

    def commutes_with(self, other: "PauliString") -> bool:
        """Whether the two strings commute (phase plays no role)."""
        if other.num_qubits != self.num_qubits:
            raise ValueError("Pauli strings act on different register sizes")
        anti = (int(np.sum(self._x * other._z)) + int(np.sum(self._z * other._x))) % 2
        return anti == 0

    # -- realisation -------------------------------------------------------
    def to_matrix(self) -> np.ndarray:
        """Dense ``2^n x 2^n`` complex matrix realisation (including phase)."""
        factors = [PAULI_MATRICES[c] for c in self.label]
        mat = reduce(np.kron, factors) if len(factors) > 1 else factors[0].copy()
        return self._phase * mat

    def expectation(self, statevector: np.ndarray) -> complex:
        """``<psi| P |psi>`` for a dense statevector ``psi``."""
        psi = np.asarray(statevector, dtype=complex).reshape(-1)
        if psi.size != 2**self.num_qubits:
            raise ValueError("statevector dimension does not match the Pauli string")
        return complex(np.vdot(psi, self.to_matrix() @ psi))

    # -- dunder plumbing ----------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PauliString):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits
            and np.array_equal(self._x, other._x)
            and np.array_equal(self._z, other._z)
            and np.isclose(self._phase, other._phase)
        )

    def __hash__(self) -> int:
        return hash((self.label, complex(np.round(self._phase.real, 12), np.round(self._phase.imag, 12))))

    def __repr__(self) -> str:
        if np.isclose(self._phase, 1.0):
            return f"PauliString('{self.label}')"
        return f"PauliString('{self.label}', phase={self._phase:.6g})"
