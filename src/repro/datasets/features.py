"""Condition-monitoring features and the feature-row-to-point-cloud map.

The paper's second Section 5 experiment starts from six features extracted
from each gearbox time series [Kumar et al., IJCNN 2021] and, for every
six-dimensional row, builds a tiny point cloud of **four points in 3-D** by
"taking three features at a time".  The QTDA algorithm is then applied to
that cloud.

The six features used here are the standard vibration statistics (RMS,
variance, kurtosis, skewness, crest factor, peak-to-peak); the exact choice
does not matter for the reproduction as long as they separate the two classes
and produce non-degenerate point clouds.
"""

from __future__ import annotations

from itertools import combinations
from typing import List

import numpy as np
from scipy import stats

#: Names of the six extracted features, in column order.
FEATURE_NAMES = ("rms", "variance", "kurtosis", "skewness", "crest_factor", "peak_to_peak")


def condition_features(signal: np.ndarray) -> np.ndarray:
    """Six standard condition-monitoring features of one vibration window."""
    x = np.asarray(signal, dtype=float).reshape(-1)
    if x.size < 4:
        raise ValueError("signal too short for feature extraction (need >= 4 samples)")
    rms = float(np.sqrt(np.mean(x**2)))
    variance = float(np.var(x))
    kurtosis = float(stats.kurtosis(x, fisher=True, bias=False))
    skewness = float(stats.skew(x, bias=False))
    peak = float(np.max(np.abs(x)))
    crest = peak / rms if rms > 0 else 0.0
    peak_to_peak = float(np.max(x) - np.min(x))
    return np.array([rms, variance, kurtosis, skewness, crest, peak_to_peak])


def feature_matrix(windows: np.ndarray) -> np.ndarray:
    """Apply :func:`condition_features` to every row of a window matrix."""
    arr = np.asarray(windows, dtype=float)
    if arr.ndim != 2:
        raise ValueError("windows must be a 2-D array (one window per row)")
    return np.vstack([condition_features(row) for row in arr])


def feature_row_to_point_cloud(feature_row: np.ndarray, num_points: int = 4) -> np.ndarray:
    """Turn one six-dimensional feature row into a small 3-D point cloud.

    Following the paper, each point takes three of the six features at a
    time.  There are ``C(6, 3) = 20`` such triples; the first ``num_points``
    triples in a fixed deterministic order are used (the paper uses four
    points per row).

    Returns
    -------
    numpy.ndarray
        Shape ``(num_points, 3)``.
    """
    row = np.asarray(feature_row, dtype=float).reshape(-1)
    if row.size != 6:
        raise ValueError(f"feature row must have 6 entries, got {row.size}")
    if not 1 <= num_points <= 20:
        raise ValueError("num_points must be between 1 and C(6,3)=20")
    triples: List[tuple] = list(combinations(range(6), 3))
    # A fixed spread-out selection: first, last, and two middle triples, then
    # the rest in order — deterministic so the experiment is reproducible.
    order = [0, 19, 9, 10] + [i for i in range(20) if i not in (0, 19, 9, 10)]
    chosen = [triples[i] for i in order[:num_points]]
    return np.array([[row[i], row[j], row[k]] for i, j, k in chosen], dtype=float)


def feature_rows_to_point_clouds(features: np.ndarray, num_points: int = 4) -> List[np.ndarray]:
    """Vectorised convenience: one point cloud per feature row."""
    arr = np.asarray(features, dtype=float)
    if arr.ndim != 2 or arr.shape[1] != 6:
        raise ValueError("features must have shape (n_rows, 6)")
    return [feature_row_to_point_cloud(row, num_points=num_points) for row in arr]
