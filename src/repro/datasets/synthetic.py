"""Synthetic drift/anomaly streams for the streaming (sliding-window) path.

The gearbox generator (:mod:`repro.datasets.gearbox`) models a *stationary*
machine in one of two health states.  Streaming topological monitoring is
most interesting on signals whose statistics change mid-stream, so this
module synthesises a second workload:

* a slow **concept drift** — the carrier frequency wobbles sinusoidally
  around its base value, so consecutive windows are similar but never
  identical (the incremental sweep engine's favourable regime);
* a hard **regime switch** partway through the stream — the carrier jumps to
  a new frequency and amplitude, the "new operating point" scenario where a
  window-by-window monitor should see its features move;
* an optional **injected transient** class — short decaying resonance bursts
  at random positions, the anomaly signature (a local scatter of the
  delay-embedded attractor, topologically analogous to the gearbox fault
  impulses).

``anomalous=False`` streams carry the drift + regime switch only;
``anomalous=True`` adds the transients, giving a two-class problem that
plugs into the existing timeseries experiment
(``repro-experiments timeseries --signal drift``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_integer, check_positive_integer


@dataclass
class DriftStreamConfig:
    """Parameters of the synthetic drift/anomaly stream generator.

    Defaults match the gearbox rig's sampling rate so windowing parameters
    carry over; the carrier is slower than the gear mesh (a rotor-speed
    scale) because the interesting structure here is the drift, not the
    harmonics.
    """

    sampling_rate: float = 5000.0
    base_frequency: float = 40.0
    shifted_frequency: float = 62.0
    regime_switch_fraction: float = 0.5
    amplitude_step: float = 0.5
    drift_depth: float = 0.08
    drift_frequency: float = 0.5
    transient_amplitude: float = 2.5
    transient_decay: float = 90.0
    transient_resonance_frequency: float = 700.0
    transients_per_signal: int = 3
    noise_std: float = 0.2

    def __post_init__(self):
        if self.sampling_rate <= 0 or self.base_frequency <= 0 or self.shifted_frequency <= 0:
            raise ValueError("frequencies and sampling rate must be positive")
        if not 0.0 < self.regime_switch_fraction < 1.0:
            raise ValueError("regime_switch_fraction must lie in (0, 1)")
        if not 0.0 <= self.drift_depth < 1.0:
            raise ValueError("drift_depth must lie in [0, 1)")
        self.transients_per_signal = check_integer(
            self.transients_per_signal, "transients_per_signal", minimum=0
        )


def generate_drift_signal(
    num_samples: int,
    anomalous: bool,
    config: DriftStreamConfig | None = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """One drift/regime-switch stream of ``num_samples`` samples.

    The instantaneous carrier frequency is integrated into a phase (so the
    waveform is continuous through both the drift and the switch):
    ``f(t) = f_base·(1 + depth·sin(2π f_drift t))`` before the switch, the
    same wobble around ``shifted_frequency`` after it, with the amplitude
    stepping up by ``amplitude_step``.  ``anomalous`` injects
    ``transients_per_signal`` decaying resonance bursts at random positions.

    Signature mirrors :func:`repro.datasets.gearbox.generate_gearbox_signal`
    (length, class flag, config, seed) so experiment drivers can switch
    generators uniformly.
    """
    n = check_positive_integer(num_samples, "num_samples")
    cfg = config if config is not None else DriftStreamConfig()
    rng = as_rng(seed)
    t = np.arange(n) / cfg.sampling_rate
    switch = int(n * cfg.regime_switch_fraction)

    carrier_frequency = np.where(np.arange(n) < switch, cfg.base_frequency, cfg.shifted_frequency)
    wobble = 1.0 + cfg.drift_depth * np.sin(
        2.0 * np.pi * cfg.drift_frequency * t + rng.uniform(0.0, 2.0 * np.pi)
    )
    instantaneous = carrier_frequency * wobble
    phase = 2.0 * np.pi * np.cumsum(instantaneous) / cfg.sampling_rate
    amplitude = np.where(np.arange(n) < switch, 1.0, 1.0 + cfg.amplitude_step)
    signal = amplitude * np.sin(phase + rng.uniform(0.0, 2.0 * np.pi))

    if anomalous and cfg.transients_per_signal > 0:
        # Bursts land anywhere in the stream (drawn first so the draw count
        # is independent of burst placement), each a decaying resonance.
        starts = np.sort(rng.integers(0, max(n - 1, 1), size=cfg.transients_per_signal))
        for start_idx in starts:
            length = min(n - int(start_idx), int(cfg.sampling_rate / cfg.drift_frequency) // 50 + 1)
            local_t = np.arange(length) / cfg.sampling_rate
            burst = (
                cfg.transient_amplitude
                * np.exp(-cfg.transient_decay * local_t)
                * np.sin(2.0 * np.pi * cfg.transient_resonance_frequency * local_t)
            )
            signal[int(start_idx) : int(start_idx) + length] += burst

    signal += rng.normal(scale=cfg.noise_std, size=n)
    return signal


def generate_drift_dataset(
    num_samples_per_class: int = 60,
    window_length: int = 500,
    config: DriftStreamConfig | None = None,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Windowed two-class drift dataset (clean vs transient-injected).

    Mirrors :func:`repro.datasets.gearbox.generate_gearbox_dataset`: each
    window is an independently seeded stream, classes are balanced and rows
    are shuffled.  Label 0 = drift + regime switch only; label 1 = the same
    plus injected transients.
    """
    per_class = check_positive_integer(num_samples_per_class, "num_samples_per_class")
    length = check_positive_integer(window_length, "window_length")
    rng = as_rng(seed)
    windows = np.empty((2 * per_class, length))
    labels = np.empty(2 * per_class, dtype=int)
    row = 0
    for label, anomalous in ((0, False), (1, True)):
        for _ in range(per_class):
            windows[row] = generate_drift_signal(length, anomalous=anomalous, config=config, seed=rng)
            labels[row] = label
            row += 1
    permutation = rng.permutation(2 * per_class)
    return windows[permutation], labels[permutation]
