"""Synthetic drift/anomaly streams for the streaming (sliding-window) path.

The gearbox generator (:mod:`repro.datasets.gearbox`) models a *stationary*
machine in one of two health states.  Streaming topological monitoring is
most interesting on signals whose statistics change mid-stream, so this
module synthesises a second workload:

* a slow **concept drift** — the carrier frequency wobbles sinusoidally
  around its base value, so consecutive windows are similar but never
  identical (the incremental sweep engine's favourable regime);
* a hard **regime switch** partway through the stream — the carrier jumps to
  a new frequency and amplitude, the "new operating point" scenario where a
  window-by-window monitor should see its features move;
* an optional **injected transient** class — short decaying resonance bursts
  at random positions, the anomaly signature (a local scatter of the
  delay-embedded attractor, topologically analogous to the gearbox fault
  impulses).

``anomalous=False`` streams carry the drift + regime switch only;
``anomalous=True`` adds the transients, giving a two-class problem that
plugs into the existing timeseries experiment
(``repro-experiments timeseries --signal drift``).

An **adversarial corruption wrapper** (:class:`AdversarialStreamConfig`,
:func:`corrupt_signal`) layers heavy-tailed Student-t impulses and sensor
occlusions (stuck-at-hold or dropped-to-zero runs) on top of any signal;
:func:`generate_adversarial_signal` / :func:`generate_adversarial_dataset`
apply it to the drift stream, giving the ``--signal adversarial`` workload —
the same two-class task seen through a misbehaving sensor.

The module also provides a **higher-dimensional point-cloud stream**
(:func:`generate_highdim_cloud_stream`): a known low-dimensional shape
(circle, sphere or torus — reference Betti numbers in hand) embedded in a
random subspace of :math:`\\mathbb{R}^d` and slowly rotated through a random
plane frame by frame, plus ambient Gaussian noise.  Topology is invariant
under the rotation, so every frame should report the same Betti numbers
while the raw coordinates differ — the service load tests use these frames
as a realistic "streaming telemetry" request class whose geometry never
repeats exactly (defeats caches, exercises the real compute path).
"""

from __future__ import annotations

from dataclasses import dataclass
from dataclasses import field as dataclass_field
from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_integer, check_positive_integer


@dataclass
class DriftStreamConfig:
    """Parameters of the synthetic drift/anomaly stream generator.

    Defaults match the gearbox rig's sampling rate so windowing parameters
    carry over; the carrier is slower than the gear mesh (a rotor-speed
    scale) because the interesting structure here is the drift, not the
    harmonics.
    """

    sampling_rate: float = 5000.0
    base_frequency: float = 40.0
    shifted_frequency: float = 62.0
    regime_switch_fraction: float = 0.5
    amplitude_step: float = 0.5
    drift_depth: float = 0.08
    drift_frequency: float = 0.5
    transient_amplitude: float = 2.5
    transient_decay: float = 90.0
    transient_resonance_frequency: float = 700.0
    transients_per_signal: int = 3
    noise_std: float = 0.2

    def __post_init__(self):
        if self.sampling_rate <= 0 or self.base_frequency <= 0 or self.shifted_frequency <= 0:
            raise ValueError("frequencies and sampling rate must be positive")
        if not 0.0 < self.regime_switch_fraction < 1.0:
            raise ValueError("regime_switch_fraction must lie in (0, 1)")
        if not 0.0 <= self.drift_depth < 1.0:
            raise ValueError("drift_depth must lie in [0, 1)")
        self.transients_per_signal = check_integer(
            self.transients_per_signal, "transients_per_signal", minimum=0
        )


def generate_drift_signal(
    num_samples: int,
    anomalous: bool,
    config: DriftStreamConfig | None = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """One drift/regime-switch stream of ``num_samples`` samples.

    The instantaneous carrier frequency is integrated into a phase (so the
    waveform is continuous through both the drift and the switch):
    ``f(t) = f_base·(1 + depth·sin(2π f_drift t))`` before the switch, the
    same wobble around ``shifted_frequency`` after it, with the amplitude
    stepping up by ``amplitude_step``.  ``anomalous`` injects
    ``transients_per_signal`` decaying resonance bursts at random positions.

    Signature mirrors :func:`repro.datasets.gearbox.generate_gearbox_signal`
    (length, class flag, config, seed) so experiment drivers can switch
    generators uniformly.
    """
    n = check_positive_integer(num_samples, "num_samples")
    cfg = config if config is not None else DriftStreamConfig()
    rng = as_rng(seed)
    t = np.arange(n) / cfg.sampling_rate
    switch = int(n * cfg.regime_switch_fraction)

    carrier_frequency = np.where(np.arange(n) < switch, cfg.base_frequency, cfg.shifted_frequency)
    wobble = 1.0 + cfg.drift_depth * np.sin(
        2.0 * np.pi * cfg.drift_frequency * t + rng.uniform(0.0, 2.0 * np.pi)
    )
    instantaneous = carrier_frequency * wobble
    phase = 2.0 * np.pi * np.cumsum(instantaneous) / cfg.sampling_rate
    amplitude = np.where(np.arange(n) < switch, 1.0, 1.0 + cfg.amplitude_step)
    signal = amplitude * np.sin(phase + rng.uniform(0.0, 2.0 * np.pi))

    if anomalous and cfg.transients_per_signal > 0:
        # Bursts land anywhere in the stream (drawn first so the draw count
        # is independent of burst placement), each a decaying resonance.
        starts = np.sort(rng.integers(0, max(n - 1, 1), size=cfg.transients_per_signal))
        for start_idx in starts:
            length = min(n - int(start_idx), int(cfg.sampling_rate / cfg.drift_frequency) // 50 + 1)
            local_t = np.arange(length) / cfg.sampling_rate
            burst = (
                cfg.transient_amplitude
                * np.exp(-cfg.transient_decay * local_t)
                * np.sin(2.0 * np.pi * cfg.transient_resonance_frequency * local_t)
            )
            signal[int(start_idx) : int(start_idx) + length] += burst

    signal += rng.normal(scale=cfg.noise_std, size=n)
    return signal


def generate_drift_dataset(
    num_samples_per_class: int = 60,
    window_length: int = 500,
    config: DriftStreamConfig | None = None,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Windowed two-class drift dataset (clean vs transient-injected).

    Mirrors :func:`repro.datasets.gearbox.generate_gearbox_dataset`: each
    window is an independently seeded stream, classes are balanced and rows
    are shuffled.  Label 0 = drift + regime switch only; label 1 = the same
    plus injected transients.
    """
    per_class = check_positive_integer(num_samples_per_class, "num_samples_per_class")
    length = check_positive_integer(window_length, "window_length")
    rng = as_rng(seed)
    windows = np.empty((2 * per_class, length))
    labels = np.empty(2 * per_class, dtype=int)
    row = 0
    for label, anomalous in ((0, False), (1, True)):
        for _ in range(per_class):
            windows[row] = generate_drift_signal(length, anomalous=anomalous, config=config, seed=rng)
            labels[row] = label
            row += 1
    permutation = rng.permutation(2 * per_class)
    return windows[permutation], labels[permutation]


# ---------------------------------------------------------------------------
# Adversarially noisy streams: heavy-tailed impulses + sensor occlusion
# ---------------------------------------------------------------------------


@dataclass
class AdversarialStreamConfig:
    """Corruption parameters layered on top of the drift stream.

    Two failure modes that Gaussian-noise robustness says nothing about:

    * **heavy-tailed impulses** — a random ``impulse_fraction`` of samples
      receives additive Student-t shocks with ``impulse_df`` degrees of
      freedom (``df < 2`` has infinite variance, so single samples can dwarf
      the carrier) scaled by ``impulse_scale``;
    * **occlusion** — ``occlusions_per_signal`` contiguous runs of
      ``occlusion_length`` samples are blanked, either frozen at the last
      pre-occlusion value (``"hold"``, a stuck sensor) or zeroed
      (``"zero"``, a dropped feed).

    ``base`` is the underlying :class:`DriftStreamConfig`; the class-1
    transients are injected *before* corruption, so the classification task
    is "find the anomaly signature through the corruption".
    """

    base: DriftStreamConfig = dataclass_field(default_factory=lambda: DriftStreamConfig())
    impulse_fraction: float = 0.02
    impulse_df: float = 1.5
    impulse_scale: float = 0.8
    occlusions_per_signal: int = 2
    occlusion_length: int = 40
    occlusion_mode: str = "hold"

    def __post_init__(self):
        if not 0.0 <= self.impulse_fraction <= 1.0:
            raise ValueError("impulse_fraction must lie in [0, 1]")
        if self.impulse_df <= 0:
            raise ValueError("impulse_df must be positive")
        if self.impulse_scale < 0:
            raise ValueError("impulse_scale must be non-negative")
        self.occlusions_per_signal = check_integer(
            self.occlusions_per_signal, "occlusions_per_signal", minimum=0
        )
        self.occlusion_length = check_positive_integer(
            self.occlusion_length, "occlusion_length"
        )
        if self.occlusion_mode not in ("hold", "zero"):
            raise ValueError(
                f"occlusion_mode must be 'hold' or 'zero', got {self.occlusion_mode!r}"
            )


def corrupt_signal(
    signal: np.ndarray,
    config: AdversarialStreamConfig | None = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """A corrupted copy of ``signal`` (impulses then occlusions; input unchanged)."""
    cfg = config if config is not None else AdversarialStreamConfig()
    rng = as_rng(seed)
    out = np.array(signal, dtype=float, copy=True)
    n = out.size

    num_impulses = int(round(cfg.impulse_fraction * n))
    if num_impulses > 0 and cfg.impulse_scale > 0:
        positions = rng.choice(n, size=min(num_impulses, n), replace=False)
        out[positions] += cfg.impulse_scale * rng.standard_t(cfg.impulse_df, size=positions.size)

    for _ in range(cfg.occlusions_per_signal):
        length = min(cfg.occlusion_length, n)
        start = int(rng.integers(0, max(n - length, 0) + 1))
        if cfg.occlusion_mode == "hold":
            held = out[start - 1] if start > 0 else out[start]
            out[start : start + length] = held
        else:
            out[start : start + length] = 0.0
    return out


def generate_adversarial_signal(
    num_samples: int,
    anomalous: bool,
    config: AdversarialStreamConfig | None = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """One drift stream pushed through the adversarial corruption wrapper.

    Signature mirrors :func:`generate_drift_signal` (length, class flag,
    config, seed) so the experiment drivers swap generators uniformly; one
    seeded RNG covers both the clean stream and its corruption.
    """
    cfg = config if config is not None else AdversarialStreamConfig()
    rng = as_rng(seed)
    clean = generate_drift_signal(num_samples, anomalous, config=cfg.base, seed=rng)
    return corrupt_signal(clean, config=cfg, seed=rng)


def generate_adversarial_dataset(
    num_samples_per_class: int = 60,
    window_length: int = 500,
    config: AdversarialStreamConfig | None = None,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Windowed two-class adversarial dataset (both classes corrupted).

    Label 0 = corrupted drift stream; label 1 = the same plus injected
    transients (also corrupted) — :func:`generate_drift_dataset` behind
    :func:`corrupt_signal`, with balanced classes and shuffled rows.
    """
    per_class = check_positive_integer(num_samples_per_class, "num_samples_per_class")
    length = check_positive_integer(window_length, "window_length")
    rng = as_rng(seed)
    windows = np.empty((2 * per_class, length))
    labels = np.empty(2 * per_class, dtype=int)
    row = 0
    for label, anomalous in ((0, False), (1, True)):
        for _ in range(per_class):
            windows[row] = generate_adversarial_signal(
                length, anomalous=anomalous, config=config, seed=rng
            )
            labels[row] = label
            row += 1
    permutation = rng.permutation(2 * per_class)
    return windows[permutation], labels[permutation]


#: Intrinsic embedding dimension of each supported stream shape.
_SHAPE_DIMS = {"circle": 2, "sphere": 3, "torus": 3}


@dataclass
class HighDimStreamConfig:
    """Parameters of the rotating high-dimensional point-cloud stream.

    A ``shape`` with known topology (circle: β₀=1, β₁=1; sphere: β₂=1;
    torus: β₁=2) is embedded into a random ``ambient_dim``-dimensional
    subspace and rotated by ``rotation_per_frame`` radians per frame through
    a random 2-plane of the ambient space; ``noise_std`` Gaussian noise is
    re-drawn every frame.
    """

    ambient_dim: int = 8
    num_points: int = 24
    shape: str = "circle"
    radius: float = 1.0
    tube_radius: float = 0.35
    rotation_per_frame: float = 0.15
    noise_std: float = 0.02

    def __post_init__(self):
        if self.shape not in _SHAPE_DIMS:
            raise ValueError(
                f"shape must be one of {sorted(_SHAPE_DIMS)}, got {self.shape!r}"
            )
        self.num_points = check_positive_integer(self.num_points, "num_points")
        self.ambient_dim = check_integer(
            self.ambient_dim, "ambient_dim", minimum=_SHAPE_DIMS[self.shape]
        )
        if self.radius <= 0:
            raise ValueError("radius must be positive")
        if self.shape == "torus" and not 0.0 < self.tube_radius < self.radius:
            raise ValueError("torus requires 0 < tube_radius < radius")
        if self.noise_std < 0:
            raise ValueError("noise_std must be non-negative")


def _intrinsic_cloud(cfg: HighDimStreamConfig) -> np.ndarray:
    """The noiseless shape in its intrinsic 2-D/3-D coordinates.

    Points are placed deterministically (even angles / Fibonacci lattice /
    golden-ratio torus winding) so the sampled topology is as clean as the
    point budget allows — randomness enters only through the embedding,
    rotation and noise.
    """
    n = cfg.num_points
    index = np.arange(n)
    golden = (1.0 + np.sqrt(5.0)) / 2.0
    if cfg.shape == "circle":
        angle = 2.0 * np.pi * index / n
        return cfg.radius * np.column_stack([np.cos(angle), np.sin(angle)])
    if cfg.shape == "sphere":
        # Fibonacci sphere: near-uniform without clustering at the poles.
        z = 1.0 - 2.0 * (index + 0.5) / n
        ring = np.sqrt(np.maximum(0.0, 1.0 - z**2))
        angle = 2.0 * np.pi * index / golden
        return cfg.radius * np.column_stack([ring * np.cos(angle), ring * np.sin(angle), z])
    # Torus: a single golden-ratio winding covers both cycles evenly.
    major = 2.0 * np.pi * index / n
    minor = 2.0 * np.pi * index / golden
    ring = cfg.radius + cfg.tube_radius * np.cos(minor)
    return np.column_stack(
        [ring * np.cos(major), ring * np.sin(major), cfg.tube_radius * np.sin(minor)]
    )


def generate_highdim_cloud_stream(
    num_frames: int,
    config: HighDimStreamConfig | None = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """Stream of rotating high-dimensional clouds, shape ``(frames, points, d)``.

    Frame ``f`` is the intrinsic shape embedded into a random orthonormal
    subspace of :math:`\\mathbb{R}^d`, rotated by ``f·rotation_per_frame``
    radians in a random 2-plane, with fresh Gaussian noise.  Every frame has
    the same topology (rotations are isometries; the noise is small), so a
    streaming monitor should see constant Betti numbers over coordinates
    that never repeat — the service load tests rely on exactly that.
    """
    frames = check_positive_integer(num_frames, "num_frames")
    cfg = config if config is not None else HighDimStreamConfig()
    rng = as_rng(seed)
    d = cfg.ambient_dim
    intrinsic = _intrinsic_cloud(cfg)
    m = intrinsic.shape[1]

    # One QR draw gives the embedding basis (first m columns) and the
    # rotation plane.  The plane must intersect the embedding subspace —
    # a plane fully orthogonal to it would rotate nothing the points span,
    # leaving every frame identical — so one axis comes from inside the
    # embedding (u) and the other is a fresh direction when one exists (v).
    basis = np.linalg.qr(rng.normal(size=(d, d)))[0]
    embedding = basis[:, :m]
    u = basis[:, 0]
    v = basis[:, m] if d > m else basis[:, 1]

    stream = np.empty((frames, cfg.num_points, d))
    for frame in range(frames):
        theta = frame * cfg.rotation_per_frame
        # Rodrigues-style plane rotation: identity outside span(u, v).
        rotation = (
            np.eye(d)
            + (np.cos(theta) - 1.0) * (np.outer(u, u) + np.outer(v, v))
            + np.sin(theta) * (np.outer(u, v) - np.outer(v, u))
        )
        embedded = intrinsic @ (rotation @ embedding).T
        if cfg.noise_std > 0:
            embedded = embedded + rng.normal(scale=cfg.noise_std, size=embedded.shape)
        stream[frame] = embedded
    return stream
