"""Synthetic gearbox vibration signals (substitute for the SEU dataset).

The paper classifies *healthy* vs *surface fault* gearbox vibration time
series from the Southeast-University mechanical dataset.  That dataset cannot
be downloaded in this offline environment, so this module synthesises signals
with the same qualitative structure used throughout the condition-monitoring
literature:

* **healthy** — a sum of gear-mesh harmonics (fundamental + a few overtones)
  with small amplitude/phase jitter and broadband Gaussian noise;
* **surface fault** — the same carrier plus (i) periodic impulsive bursts at
  the faulty-gear rotation frequency (amplitude-modulated decaying
  oscillations, the classic local-fault signature), (ii) stronger sideband
  modulation of the mesh harmonics and (iii) slightly elevated noise.

What matters for the reproduction is not the absolute waveforms but that the
two classes yield *topologically distinguishable* delay-embedded point clouds
(the healthy attractor is a smooth torus-like loop; the impulses scatter
points away from it), which is what drives the Betti-number features of
Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive_integer


@dataclass
class GearboxDatasetConfig:
    """Parameters of the synthetic gearbox signal generator.

    The defaults roughly mimic the SEU rig: a 20 Hz shaft driving a gear pair
    (mesh frequency 300 Hz) sampled at 5 kHz.
    """

    sampling_rate: float = 5000.0
    shaft_frequency: float = 20.0
    mesh_frequency: float = 300.0
    num_harmonics: int = 3
    healthy_noise_std: float = 0.25
    faulty_noise_std: float = 0.35
    fault_impulse_amplitude: float = 1.8
    fault_impulse_decay: float = 120.0
    fault_resonance_frequency: float = 900.0
    fault_sideband_depth: float = 0.5

    def __post_init__(self):
        if self.sampling_rate <= 0 or self.shaft_frequency <= 0 or self.mesh_frequency <= 0:
            raise ValueError("frequencies and sampling rate must be positive")
        self.num_harmonics = check_positive_integer(self.num_harmonics, "num_harmonics")


def generate_gearbox_signal(
    num_samples: int,
    faulty: bool,
    config: GearboxDatasetConfig | None = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """One vibration signal of ``num_samples`` samples.

    Parameters
    ----------
    num_samples:
        Signal length (the paper windows signals into 500-sample segments).
    faulty:
        Generate the surface-fault class instead of the healthy class.
    config:
        Generator parameters.
    seed:
        RNG seed.
    """
    n = check_positive_integer(num_samples, "num_samples")
    cfg = config if config is not None else GearboxDatasetConfig()
    rng = as_rng(seed)
    t = np.arange(n) / cfg.sampling_rate

    # Gear-mesh harmonics with small random amplitude and phase jitter.
    signal = np.zeros(n)
    for harmonic in range(1, cfg.num_harmonics + 1):
        amplitude = (1.0 / harmonic) * (1.0 + 0.05 * rng.normal())
        phase = rng.uniform(0.0, 2.0 * np.pi)
        carrier = np.sin(2.0 * np.pi * harmonic * cfg.mesh_frequency * t + phase)
        if faulty:
            # Surface faults modulate the mesh harmonics at the shaft frequency.
            modulation = 1.0 + cfg.fault_sideband_depth * np.sin(
                2.0 * np.pi * cfg.shaft_frequency * t + rng.uniform(0.0, 2.0 * np.pi)
            )
            carrier = carrier * modulation
        signal += amplitude * carrier

    # Shaft-frequency component (imbalance), present in both classes.
    signal += 0.3 * np.sin(2.0 * np.pi * cfg.shaft_frequency * t + rng.uniform(0.0, 2.0 * np.pi))

    if faulty:
        # Periodic impulsive bursts: one decaying resonance per shaft revolution.
        period = cfg.sampling_rate / cfg.shaft_frequency
        offset = rng.uniform(0.0, period)
        impulse_times = np.arange(offset, n, period)
        for start in impulse_times:
            start_idx = int(start)
            if start_idx >= n:
                break
            length = min(n - start_idx, int(period))
            local_t = np.arange(length) / cfg.sampling_rate
            burst = (
                cfg.fault_impulse_amplitude
                * np.exp(-cfg.fault_impulse_decay * local_t)
                * np.sin(2.0 * np.pi * cfg.fault_resonance_frequency * local_t)
            )
            signal[start_idx : start_idx + length] += burst

    noise_std = cfg.faulty_noise_std if faulty else cfg.healthy_noise_std
    signal += rng.normal(scale=noise_std, size=n)
    return signal


def generate_gearbox_dataset(
    num_samples_per_class: int = 60,
    window_length: int = 500,
    config: GearboxDatasetConfig | None = None,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Windowed two-class dataset of synthetic gearbox vibration segments.

    Returns
    -------
    (windows, labels)
        ``windows`` has shape ``(2 * num_samples_per_class, window_length)``;
        ``labels`` is 0 for healthy and 1 for surface fault.  Classes are
        balanced, mirroring the paper's "equal number of random samples from
        both sets".
    """
    per_class = check_positive_integer(num_samples_per_class, "num_samples_per_class")
    length = check_positive_integer(window_length, "window_length")
    rng = as_rng(seed)
    windows = np.empty((2 * per_class, length))
    labels = np.empty(2 * per_class, dtype=int)
    row = 0
    for label, faulty in ((0, False), (1, True)):
        for _ in range(per_class):
            windows[row] = generate_gearbox_signal(length, faulty=faulty, config=config, seed=rng)
            labels[row] = label
            row += 1
    permutation = rng.permutation(2 * per_class)
    return windows[permutation], labels[permutation]


def generate_processed_gearbox_dataset(
    num_rows: int = 255,
    num_healthy: int = 51,
    config: GearboxDatasetConfig | None = None,
    window_length: int = 500,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Six-feature tabular dataset mirroring the paper's processed gearbox data.

    The paper's second Section 5 experiment uses 255 pre-extracted feature
    rows (51 healthy, 204 faulty), six features per row.  Here each row is
    produced by generating a fresh synthetic window and extracting the six
    condition-monitoring features of :func:`repro.datasets.features.condition_features`.

    Returns
    -------
    (features, labels)
        ``features`` has shape ``(num_rows, 6)``; ``labels`` is 0/1.
    """
    from repro.datasets.features import condition_features

    num_rows = check_positive_integer(num_rows, "num_rows")
    num_healthy = check_positive_integer(num_healthy, "num_healthy")
    if num_healthy >= num_rows:
        raise ValueError("num_healthy must be smaller than num_rows")
    rng = as_rng(seed)
    features = np.empty((num_rows, 6))
    labels = np.empty(num_rows, dtype=int)
    for i in range(num_rows):
        faulty = i >= num_healthy
        window = generate_gearbox_signal(window_length, faulty=faulty, config=config, seed=rng)
        features[i] = condition_features(window)
        labels[i] = int(faulty)
    permutation = rng.permutation(num_rows)
    return features[permutation], labels[permutation]


def class_summary(labels: np.ndarray) -> Dict[int, int]:
    """Label histogram, for dataset sanity reporting."""
    values, counts = np.unique(np.asarray(labels), return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}
