"""Reference point clouds with known topology.

These clouds have textbook Betti numbers (a circle has ``β = (1, 1)``, two
clusters have ``β_0 = 2``, a figure-eight has ``β_1 = 2`` ...), which makes
them the natural fixtures for tests, examples and the error-study benchmarks:
the QPE estimate can be compared against a value that is known analytically
rather than merely computed classically.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive_integer


def _jitter(points: np.ndarray, noise: float, rng: np.random.Generator) -> np.ndarray:
    if noise <= 0:
        return points
    return points + rng.normal(scale=noise, size=points.shape)


def circle_cloud(num_points: int = 20, radius: float = 1.0, noise: float = 0.0, seed: SeedLike = None) -> np.ndarray:
    """Points on a circle (β_0 = 1, β_1 = 1 at a suitable scale)."""
    n = check_positive_integer(num_points, "num_points")
    rng = as_rng(seed)
    angles = np.linspace(0.0, 2.0 * np.pi, n, endpoint=False)
    points = radius * np.column_stack([np.cos(angles), np.sin(angles)])
    return _jitter(points, noise, rng)


def annulus_cloud(num_points: int = 60, inner_radius: float = 0.7, outer_radius: float = 1.3, seed: SeedLike = None) -> np.ndarray:
    """Uniform points in an annulus (one connected component, one hole)."""
    n = check_positive_integer(num_points, "num_points")
    rng = as_rng(seed)
    radii = np.sqrt(rng.uniform(inner_radius**2, outer_radius**2, size=n))
    angles = rng.uniform(0.0, 2.0 * np.pi, size=n)
    return np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])


def figure_eight_cloud(num_points: int = 40, radius: float = 1.0, noise: float = 0.0, seed: SeedLike = None) -> np.ndarray:
    """Two tangent circles (β_0 = 1, β_1 = 2 at a suitable scale)."""
    n = check_positive_integer(num_points, "num_points")
    rng = as_rng(seed)
    half = n // 2
    left = circle_cloud(half, radius=radius) - np.array([radius, 0.0])
    right = circle_cloud(n - half, radius=radius) + np.array([radius, 0.0])
    return _jitter(np.vstack([left, right]), noise, rng)


def clusters_cloud(
    num_clusters: int = 3,
    points_per_cluster: int = 8,
    separation: float = 5.0,
    spread: float = 0.3,
    seed: SeedLike = None,
) -> np.ndarray:
    """Well-separated Gaussian blobs (β_0 = num_clusters at small scales)."""
    k = check_positive_integer(num_clusters, "num_clusters")
    per = check_positive_integer(points_per_cluster, "points_per_cluster")
    rng = as_rng(seed)
    centers = separation * np.column_stack([np.arange(k), np.zeros(k)])
    clouds = [center + rng.normal(scale=spread, size=(per, 2)) for center in centers]
    return np.vstack(clouds)


def sphere_cloud(num_points: int = 50, radius: float = 1.0, seed: SeedLike = None) -> np.ndarray:
    """Points on a 2-sphere in 3-D (β_0 = 1, β_1 = 0, β_2 = 1 at a suitable scale)."""
    n = check_positive_integer(num_points, "num_points")
    rng = as_rng(seed)
    gauss = rng.normal(size=(n, 3))
    gauss /= np.linalg.norm(gauss, axis=1, keepdims=True)
    return radius * gauss


def torus_cloud(
    num_points: int = 80,
    major_radius: float = 2.0,
    minor_radius: float = 0.6,
    seed: SeedLike = None,
) -> np.ndarray:
    """Points on a torus in 3-D (β_0 = 1, β_1 = 2, β_2 = 1 for a fine sampling)."""
    n = check_positive_integer(num_points, "num_points")
    rng = as_rng(seed)
    u = rng.uniform(0.0, 2.0 * np.pi, size=n)
    v = rng.uniform(0.0, 2.0 * np.pi, size=n)
    x = (major_radius + minor_radius * np.cos(v)) * np.cos(u)
    y = (major_radius + minor_radius * np.cos(v)) * np.sin(u)
    z = minor_radius * np.sin(v)
    return np.column_stack([x, y, z])
