"""Data substrates.

The paper's Section 5 uses the Southeast-University gearbox dataset (raw
vibration time series and a processed six-feature variant).  That dataset is
not available offline, so :mod:`repro.datasets.gearbox` generates synthetic
healthy / surface-fault vibration signals with the same qualitative structure
(see DESIGN.md §2 for the substitution rationale).  The remaining modules
provide windowing, condition-monitoring feature extraction and reference
point clouds with known Betti numbers.
"""

from repro.datasets.gearbox import GearboxDatasetConfig, generate_gearbox_dataset, generate_gearbox_signal
from repro.datasets.synthetic import (
    AdversarialStreamConfig,
    DriftStreamConfig,
    HighDimStreamConfig,
    corrupt_signal,
    generate_adversarial_dataset,
    generate_adversarial_signal,
    generate_drift_dataset,
    generate_drift_signal,
    generate_highdim_cloud_stream,
)
from repro.datasets.features import (
    condition_features,
    feature_matrix,
    feature_row_to_point_cloud,
    FEATURE_NAMES,
)
from repro.datasets.windows import sliding_windows, windowed_dataset
from repro.datasets.point_clouds import (
    annulus_cloud,
    circle_cloud,
    clusters_cloud,
    figure_eight_cloud,
    sphere_cloud,
    torus_cloud,
)

__all__ = [
    "GearboxDatasetConfig",
    "generate_gearbox_dataset",
    "generate_gearbox_signal",
    "AdversarialStreamConfig",
    "DriftStreamConfig",
    "HighDimStreamConfig",
    "corrupt_signal",
    "generate_adversarial_dataset",
    "generate_adversarial_signal",
    "generate_drift_dataset",
    "generate_drift_signal",
    "generate_highdim_cloud_stream",
    "condition_features",
    "feature_matrix",
    "feature_row_to_point_cloud",
    "FEATURE_NAMES",
    "sliding_windows",
    "windowed_dataset",
    "annulus_cloud",
    "circle_cloud",
    "clusters_cloud",
    "figure_eight_cloud",
    "sphere_cloud",
    "torus_cloud",
]
