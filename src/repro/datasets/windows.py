"""Time-series windowing.

Section 5 creates data samples "by taking 500 time stamps at a time" from the
raw gearbox signals; these helpers implement that segmentation plus a small
generic sliding-window utility.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive_integer


def sliding_windows(
    series: np.ndarray, window_length: int, stride: int | None = None, copy: bool = True
) -> np.ndarray:
    """Segment a 1-D series into (possibly overlapping) windows.

    Built on :func:`numpy.lib.stride_tricks.sliding_window_view`, so the
    segmentation itself is zero-copy regardless of how densely the windows
    overlap; only the final materialisation (``copy=True``) touches
    ``O(windows · length)`` memory.

    Parameters
    ----------
    series:
        1-D array of samples.
    window_length:
        Samples per window (the paper uses 500).
    stride:
        Step between window starts; defaults to ``window_length``
        (non-overlapping windows).
    copy:
        Return a contiguous, writable copy (the default, and the historical
        behaviour).  ``copy=False`` returns the read-only strided view —
        O(1) memory, ideal for feeding overlapping windows to consumers that
        only read them.
    """
    x = np.asarray(series, dtype=float).reshape(-1)
    length = check_positive_integer(window_length, "window_length")
    step = length if stride is None else check_positive_integer(stride, "stride")
    if x.size < length:
        raise ValueError(f"series of length {x.size} is shorter than the window length {length}")
    view = np.lib.stride_tricks.sliding_window_view(x, length)[::step]
    return np.array(view) if copy else view


def windowed_dataset(
    signals: dict,
    window_length: int = 500,
    samples_per_class: int | None = None,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Build a balanced windowed dataset from labelled raw signals.

    Parameters
    ----------
    signals:
        Mapping label -> 1-D raw signal.
    window_length:
        Samples per window.
    samples_per_class:
        Number of windows drawn per class; defaults to the largest balanced
        count available.
    seed:
        RNG seed for the per-class window subsampling.

    Returns
    -------
    (windows, labels)
    """
    rng = as_rng(seed)
    per_label = {label: sliding_windows(sig, window_length) for label, sig in signals.items()}
    max_balanced = min(w.shape[0] for w in per_label.values())
    count = max_balanced if samples_per_class is None else min(int(samples_per_class), max_balanced)
    if count < 1:
        raise ValueError("Not enough data for a single window per class")
    all_windows = []
    all_labels = []
    for label, windows in per_label.items():
        idx = rng.choice(windows.shape[0], size=count, replace=False)
        all_windows.append(windows[idx])
        all_labels.append(np.full(count, label))
    windows = np.vstack(all_windows)
    labels = np.concatenate(all_labels)
    permutation = rng.permutation(labels.size)
    return windows[permutation], labels[permutation]
